"""Optimizer passes over the block-program IR.

PR 2 lowered the Fig 4.13 schedule once and executed it verbatim; this
module is the missing optimizer.  Each pass is a semantics-preserving
transform ``BlockProgram -> BlockProgram`` — the functional executor's
outputs are bit-identical before and after, the streamed weight bytes
are conserved, and only the *cycle-domain* placement changes:

* :class:`CoalesceLoadsPass` — merge adjacent blocks into one
  schedulable unit, fusing their weight bundles into a single HBM
  burst and paying one host dispatch instead of k (the overhead the
  stall taxonomy bills per block).
* :class:`StageExposedLoadsPass` — split an encoder-shaped block at
  its MHA/FFN boundary into ``m``/``f`` parts on the two HBM channels
  (the Fig 4.11 decoder treatment applied to encoders), shrinking an
  *exposed* load — the ``load_starved`` cycles the classifier
  attributes — to the attention sub-bundle only.
* :class:`PrefetchChannelPass` — prefetch-depth / HBM-channel
  reassignment: deepen the A3 weight-buffer ring beyond one buffer per
  channel and/or re-balance channel hints by accumulated load cycles.
* :class:`ReorderOpsPass` — dependency-aware op reordering: strip the
  lowering's hand-written engine-serialization edges, list-schedule
  each block's dataflow DAG onto its engines by critical path, and
  re-emit the serialization edges for the new order (op ids are
  renumbered program-wide).

Every pass consumes the PR 5 stall taxonomy / schedule introspection as
its cost signal and only keeps a rewrite when the exact simulated
cycle count strictly improves, so a pipeline is monotone under its
cost architecture.  :class:`PassPipeline` composes passes, is hashable
(it participates in the lowering ``lru_cache`` keys — an optimized and
a baseline program for the same config can never collide), and
produces a :class:`PipelineReport` for the ``repro-asr optimize``
artifact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, ClassVar, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.config import ModelConfig
from repro.hw.introspect import classify_stalls
from repro.hw.kernels import Fabric
from repro.hw.memory import (
    encoder_ffn_weight_bytes,
    encoder_mha_weight_bytes,
)
from repro.hw.program import (
    BlockIR,
    BlockProgram,
    Op,
    OpKind,
    ValueRef,
    _bundle_load_cycles,
    block_compute_cycles,
    execute_program,
    lower_encoder_stack,
    lower_full_pass,
    program_load_bytes,
    program_unit_spans,
    register_cached_lowering,
    schedule_program,
)

__all__ = [
    "ProgramPass",
    "PassError",
    "CoalesceLoadsPass",
    "StageExposedLoadsPass",
    "PrefetchChannelPass",
    "ReorderOpsPass",
    "PassPipeline",
    "PassReport",
    "PipelineReport",
    "default_pipeline",
    "lower_optimized_full_pass",
    "lower_optimized_encoder_stack",
    "semantic_op_counts",
    "verify_semantics_preserved",
]


class PassError(ValueError):
    """A pass produced (or was asked to produce) an invalid program."""


@runtime_checkable
class ProgramPass(Protocol):
    """One semantics-preserving program rewrite."""

    name: str

    def run(self, program: BlockProgram) -> tuple[BlockProgram, tuple[str, ...]]:
        """Transform ``program``; returns (new program, action log)."""
        ...


# ---------------------------------------------------------- IR rebuild
def _remap_ref(ref: ValueRef, pos: dict[int, int]) -> ValueRef:
    return ValueRef("op", pos[ref.key]) if ref.kind == "op" else ref


def _rebuild_program(
    program: BlockProgram,
    order: Sequence[int | Op],
    blocks: Sequence[BlockIR],
    *,
    ops_override: dict[int, Op] | None = None,
    deps_override: dict[int, tuple[int, ...]] | None = None,
    meta: dict | None = None,
) -> BlockProgram:
    """Renumber a transformed program so ``op_id == index`` again.

    ``order`` is the new global op sequence: each element is an old op
    id or a brand-new :class:`Op` carrying a *provisional* negative
    ``op_id``.  All deps, inputs, ``op_ids`` in ``blocks``, and program
    outputs are expressed in that old/provisional id space and are
    rewritten here.  ``ops_override`` substitutes modified ops for old
    ids; ``deps_override`` substitutes whole dep tuples (still in the
    old id space).  The result is validated: ids dense, references
    topologically ordered, blocks a partition of the ops.
    """
    ops_override = ops_override or {}
    deps_override = deps_override or {}
    pos: dict[int, int] = {}
    for new_id, item in enumerate(order):
        key = item if isinstance(item, int) else item.op_id
        if key in pos:
            raise PassError(f"op {key} appears twice in the rebuilt order")
        pos[key] = new_id
    new_ops: list[Op] = []
    for new_id, item in enumerate(order):
        if isinstance(item, int):
            op = ops_override.get(item, program.ops[item])
            key = item
        else:
            op, key = item, item.op_id
        deps = deps_override.get(key, op.deps)
        new_ops.append(
            dataclasses.replace(
                op,
                op_id=new_id,
                deps=tuple(pos[d] for d in deps),
                inputs=tuple(_remap_ref(r, pos) for r in op.inputs),
            )
        )
    new_blocks = tuple(
        dataclasses.replace(blk, op_ids=tuple(pos[i] for i in blk.op_ids))
        for blk in blocks
    )
    rebuilt = BlockProgram(
        fabric=program.fabric,
        ops=tuple(new_ops),
        blocks=new_blocks,
        outputs={
            name: _remap_ref(ref, pos) for name, ref in program.outputs.items()
        },
        meta=dict(program.meta) if meta is None else meta,
    )
    _validate_program(rebuilt)
    return rebuilt


def _validate_program(program: BlockProgram) -> None:
    """The invariants every executor relies on, checked after a pass."""
    seen: set[int] = set()
    for i, op in enumerate(program.ops):
        if op.op_id != i:
            raise PassError(f"op at index {i} carries op_id {op.op_id}")
        for d in op.deps:
            if d >= i:
                raise PassError(
                    f"op {i} ('{op.label}') depends on later op {d}"
                )
        for ref in op.inputs:
            if ref.kind == "op" and ref.key >= i:
                raise PassError(
                    f"op {i} ('{op.label}') reads later op {ref.key}"
                )
    for blk in program.blocks:
        ids = set(blk.op_ids)
        if ids & seen:
            raise PassError(f"block '{blk.label}' shares ops with another block")
        seen |= ids
    if seen != set(range(program.num_ops)):
        raise PassError("blocks no longer partition the op list")
    for ref in program.outputs.values():
        if ref.kind == "op" and not 0 <= ref.key < program.num_ops:
            raise PassError(f"output references missing op {ref.key}")


def _with_meta(program: BlockProgram, **updates: Any) -> BlockProgram:
    return dataclasses.replace(program, meta={**program.meta, **updates})


def _overhead(program: BlockProgram) -> int:
    return program.fabric.calibration.block_overhead_cycles


def _total_cycles(program: BlockProgram, architecture: str) -> int:
    return schedule_program(program, architecture, _overhead(program)).total_cycles


# ------------------------------------------------------- load coalescing
def _mergeable(a: BlockIR, b: BlockIR) -> bool:
    """Only plain (un-merge-grouped) blocks fuse; decoder m/f parts owe
    their two-channel split to staying separate under A3."""
    return a.merge_group is None and b.merge_group is None


def _merge_adjacent(
    program: BlockProgram, first_label: str
) -> BlockProgram | None:
    """Fuse the named block with its successor into one schedulable
    unit; None when the pair is not fusable."""
    labels = [blk.label for blk in program.blocks]
    i = labels.index(first_label)
    if i + 1 >= len(labels):
        return None
    a, b = program.blocks[i], program.blocks[i + 1]
    if not _mergeable(a, b):
        return None
    merged_label = f"{a.label}+{b.label}"
    merged_bytes = a.load_bytes + b.load_bytes
    merged_load = (
        _bundle_load_cycles(program.fabric, merged_bytes)
        if merged_bytes
        else a.load_cycles + b.load_cycles
    )
    hint = a.channel_hint if a.channel_hint == b.channel_hint else None
    ops_override: dict[int, Op] = {}
    first_load_seen = False
    for op_id in (*a.op_ids, *b.op_ids):
        op = program.ops[op_id]
        changes: dict[str, Any] = {"block": merged_label}
        if op.kind is OpKind.LOAD:
            # The fused bundle streams as one burst: the first LOAD op
            # carries the whole transfer, followers become zero-cycle
            # markers (op count stays conserved).
            if not first_load_seen:
                changes["cycles"] = merged_load
                changes["label"] = f"LW:{merged_label}"
                first_load_seen = True
            else:
                changes["cycles"] = 0
        ops_override[op_id] = dataclasses.replace(op, **changes)
    merged = BlockIR(
        label=merged_label,
        op_ids=(*a.op_ids, *b.op_ids),
        load_cycles=merged_load,
        channel_hint=hint,
        overhead_override=a.overhead_override,
        load_bytes=merged_bytes,
    )
    blocks = (*program.blocks[:i], merged, *program.blocks[i + 2:])
    return _rebuild_program(
        program,
        list(range(program.num_ops)),
        blocks,
        ops_override=ops_override,
    )


@dataclass(frozen=True)
class CoalesceLoadsPass:
    """Merge adjacent blocks whose fused unit schedules strictly faster.

    Explicit ``groups`` name runs of adjacent block labels to fuse
    unconditionally; auto mode (``groups=None``) reads the stall
    taxonomy — per-block host dispatch is the ``overhead`` cause — and
    greedily fuses neighbours while the exact simulated cycle count
    improves.
    """

    name: ClassVar[str] = "coalesce_loads"

    groups: tuple[tuple[str, ...], ...] | None = None
    architecture: str = "A3"

    def run(self, program: BlockProgram) -> tuple[BlockProgram, tuple[str, ...]]:
        actions: list[str] = []
        prog = program
        if self.groups is not None:
            for group in self.groups:
                if len(group) < 2:
                    raise PassError(
                        f"coalesce group {group} needs at least two blocks"
                    )
                head = group[0]
                for nxt in group[1:]:
                    labels = [blk.label for blk in prog.blocks]
                    i = labels.index(head)
                    if i + 1 >= len(labels) or labels[i + 1] != nxt:
                        raise PassError(
                            f"cannot coalesce {group}: '{nxt}' does not "
                            f"follow '{head}'"
                        )
                    merged = _merge_adjacent(prog, head)
                    if merged is None:
                        raise PassError(
                            f"cannot coalesce {group}: '{head}'/'{nxt}' "
                            "are not fusable"
                        )
                    prog = merged
                    head = f"{head}+{nxt}"
                actions.append(f"coalesced {'+'.join(group)}")
            return prog, tuple(actions)

        report = classify_stalls(prog, self.architecture, _overhead(prog))
        overhead_stall = report.totals(".psa")["overhead"]
        actions.append(
            f"cost signal: {overhead_stall:g} PSA overhead-stall cycles"
        )
        if overhead_stall <= 0:
            actions.append("no dispatch overhead to recover; skipped")
            return prog, tuple(actions)
        best = _total_cycles(prog, self.architecture)
        improved = True
        while improved:
            improved = False
            for blk in prog.blocks[:-1]:
                cand = _merge_adjacent(prog, blk.label)
                if cand is None:
                    continue
                cycles = _total_cycles(cand, self.architecture)
                if cycles < best:
                    actions.append(
                        f"coalesced {blk.label} with successor: "
                        f"{best} -> {cycles} cycles"
                    )
                    prog, best, improved = cand, cycles, True
                    break
        if len(actions) == 1:
            actions.append("no profitable merge found")
        return prog, tuple(actions)


# ----------------------------------------------------- load staging/split
def _splittable(program: BlockProgram, blk: BlockIR) -> bool:
    if blk.merge_group is not None or blk.load_bytes <= 0:
        return False
    kinds = [program.ops[i].kind for i in blk.op_ids]
    if any(k in (OpKind.CACHE, OpKind.STREAM) for k in kinds):
        return False
    mm5s = sum(
        1 for i in blk.op_ids if program.ops[i].semantic == "mm5"
    )
    return mm5s == 1


def _split_block(
    program: BlockProgram, label: str, model: ModelConfig
) -> BlockProgram | None:
    """Split one encoder-shaped block at its MHA/FFN boundary into the
    Fig 4.11 two-channel form; None when the block does not match."""
    blk = program.block(label)
    if not _splittable(program, blk):
        return None
    fabric = program.fabric
    bpe = fabric.hardware.bytes_per_element
    mha_bytes = encoder_mha_weight_bytes(model, bpe)
    ffn_bytes = encoder_ffn_weight_bytes(model, bpe)
    if mha_bytes + ffn_bytes != blk.load_bytes:
        return None  # not an encoder bundle for this model config
    split_at = next(
        idx
        for idx, op_id in enumerate(blk.op_ids)
        if program.ops[op_id].semantic == "mm5"
    )
    m_ids, f_ids = blk.op_ids[:split_at], blk.op_ids[split_at:]
    if not any(program.ops[i].kind is OpKind.LOAD for i in m_ids):
        return None
    m_label, f_label = f"{label}m", f"{label}f"
    mha_load = _bundle_load_cycles(fabric, mha_bytes)
    ffn_load = _bundle_load_cycles(fabric, ffn_bytes)

    ops_override: dict[int, Op] = {}
    for op_id in m_ids:
        op = program.ops[op_id]
        if op.kind is OpKind.LOAD:
            ops_override[op_id] = dataclasses.replace(
                op,
                label=f"LW:{m_label}",
                cycles=mha_load,
                block=m_label,
                attrs={"channel_hint": 0},
            )
        else:
            ops_override[op_id] = dataclasses.replace(op, block=m_label)
    for op_id in f_ids:
        ops_override[op_id] = dataclasses.replace(
            program.ops[op_id], block=f_label
        )
    f_load_op = Op(
        op_id=-1,
        kind=OpKind.LOAD,
        label=f"LW:{f_label}",
        engines=("hbm",),
        cycles=ffn_load,
        deps=(),
        block=f_label,
        attrs={"channel_hint": 1},
    )
    # ``merge_group`` reconstructs the original unit under A1/A2, so
    # those schedules are exactly invariant under the split.
    m_blk = BlockIR(
        label=m_label,
        op_ids=m_ids,
        load_cycles=mha_load,
        channel_hint=0,
        overhead_override=blk.overhead_override,
        merge_group=blk.label,
        merged_load_cycles=blk.load_cycles,
        load_bytes=mha_bytes,
    )
    f_blk = BlockIR(
        label=f_label,
        op_ids=(*f_ids, -1),
        load_cycles=ffn_load,
        channel_hint=1,
        overhead_override=0,
        merge_group=blk.label,
        merged_load_cycles=blk.load_cycles,
        load_bytes=ffn_bytes,
    )
    i = [b.label for b in program.blocks].index(label)
    blocks = (*program.blocks[:i], m_blk, f_blk, *program.blocks[i + 1:])
    order: list[int | Op] = list(range(program.num_ops))
    # Insert the new LOAD op just before the f-part ops (the identity
    # order makes index == old id) so blocks stay position-contiguous.
    order.insert(f_ids[0], f_load_op)
    return _rebuild_program(program, order, blocks, ops_override=ops_override)


@dataclass(frozen=True)
class StageExposedLoadsPass:
    """Split blocks with *exposed* weight loads at the MHA/FFN boundary.

    An exposed load is a gap before a unit's compute in the block
    schedule — exactly the ``load_starved`` / ``channel_contention``
    cycles the stall classifier attributes.  Splitting stages the
    attention sub-bundle first (channel 0) while the FFN panel streams
    concurrently (channel 1), the encoder analogue of the decoder's
    ``LWi_m``/``LWi_f`` treatment.  Explicit ``blocks`` split
    unconditionally; auto mode splits the largest exposed gaps first
    and keeps each split only when the exact cycle count strictly
    improves, up to ``limit`` splits.
    """

    name: ClassVar[str] = "stage_exposed_loads"

    blocks: tuple[str, ...] | None = None
    limit: int = 1
    architecture: str = "A3"

    def run(self, program: BlockProgram) -> tuple[BlockProgram, tuple[str, ...]]:
        model = program.meta.get("model")
        if model is None:
            return program, ("skipped: program meta carries no model config",)
        actions: list[str] = []
        prog = program
        if self.blocks is not None:
            for label in self.blocks:
                cand = _split_block(prog, label, model)
                if cand is None:
                    raise PassError(f"block '{label}' is not splittable")
                prog = cand
                actions.append(f"split {label} -> {label}m/{label}f")
            return prog, tuple(actions)

        for _ in range(max(self.limit, 0)):
            spans, _sched = program_unit_spans(
                prog, self.architecture, _overhead(prog)
            )
            gaps: list[tuple[float, str]] = []
            prev_end = 0.0
            for span in spans:
                gap = span.compute_start - prev_end
                prev_end = span.compute_end
                if gap <= 0 or len(span.blocks) != 1:
                    continue
                if _splittable(prog, prog.block(span.blocks[0])):
                    gaps.append((gap, span.blocks[0]))
            if not gaps:
                break
            gaps.sort(key=lambda g: (-g[0], g[1]))
            best = _total_cycles(prog, self.architecture)
            accepted = False
            for gap, label in gaps:
                cand = _split_block(prog, label, model)
                if cand is None:
                    continue
                cycles = _total_cycles(cand, self.architecture)
                if cycles < best:
                    actions.append(
                        f"split {label} ({gap:g} exposed load cycles): "
                        f"{best} -> {cycles} cycles"
                    )
                    prog = cand
                    accepted = True
                    break
            if not accepted:
                break
        if not actions:
            actions.append("no profitable split found")
        return prog, tuple(actions)


# ------------------------------------------- prefetch depth / channels
@dataclass(frozen=True)
class PrefetchChannelPass:
    """Prefetch-depth and HBM-channel reassignment.

    Deepens the A3 weight-buffer ring (``num_weight_buffers`` beyond
    one per channel lets ``LW_{i+k}`` issue before ``C_{i}`` retires)
    by recording ``schedule_params`` in program meta — every scheduling
    entry point picks them up via ``schedule_params_for`` — and
    optionally re-balances un-pinned channel hints by accumulated load
    cycles.  Auto depth searches a small ring of candidates and keeps
    the best strictly-improving one; an explicit depth is applied
    unconditionally (the DSE sweeps it).
    """

    name: ClassVar[str] = "prefetch_channels"

    num_weight_buffers: int | None = None
    reassign_hints: bool = False
    architecture: str = "A3"
    _AUTO_DEPTHS: ClassVar[tuple[int, ...]] = (2, 3, 4)

    def run(self, program: BlockProgram) -> tuple[BlockProgram, tuple[str, ...]]:
        actions: list[str] = []
        report = classify_stalls(program, self.architecture, _overhead(program))
        psa = report.totals(".psa")
        actions.append(
            "cost signal: "
            f"{psa['load_starved']:g} load-starved + "
            f"{psa['channel_contention']:g} channel-contention PSA cycles"
        )
        prog = program
        best = _total_cycles(prog, self.architecture)
        if self.num_weight_buffers is not None:
            prog = _with_meta(
                prog,
                schedule_params={
                    **(prog.meta.get("schedule_params") or {}),
                    "num_weight_buffers": int(self.num_weight_buffers),
                },
            )
            best = _total_cycles(prog, self.architecture)
            actions.append(
                f"pinned num_weight_buffers={self.num_weight_buffers}"
            )
        else:
            for depth in self._AUTO_DEPTHS:
                cand = _with_meta(
                    prog,
                    schedule_params={
                        **(prog.meta.get("schedule_params") or {}),
                        "num_weight_buffers": depth,
                    },
                )
                cycles = _total_cycles(cand, self.architecture)
                if cycles < best:
                    actions.append(
                        f"num_weight_buffers={depth}: {best} -> {cycles} cycles"
                    )
                    prog, best = cand, cycles
        if self.reassign_hints:
            cand = self._rebalance_hints(prog)
            if cand is not None:
                cycles = _total_cycles(cand, self.architecture)
                if cycles < best:
                    actions.append(
                        f"re-balanced channel hints: {best} -> {cycles} cycles"
                    )
                    prog, best = cand, cycles
                else:
                    actions.append("channel re-balance not profitable; reverted")
        return prog, tuple(actions)

    def _rebalance_hints(self, program: BlockProgram) -> BlockProgram | None:
        """Greedy least-loaded-channel assignment for un-pinned blocks
        (merge-grouped parts keep their Fig 4.11 pinning)."""
        num_channels = int(
            (program.meta.get("schedule_params") or {}).get("num_channels", 2)
        )
        accum = [0.0] * num_channels
        new_blocks: list[BlockIR] = []
        changed = False
        for i, blk in enumerate(program.blocks):
            if blk.merge_group is not None:
                chan = blk.channel_hint if blk.channel_hint is not None else 0
                accum[chan] += blk.load_cycles
                new_blocks.append(blk)
                continue
            chan = min(range(num_channels), key=lambda c: (accum[c], c))
            accum[chan] += blk.load_cycles
            default = blk.channel_hint if blk.channel_hint is not None else i % num_channels
            if chan != default:
                changed = True
            new_blocks.append(dataclasses.replace(blk, channel_hint=chan))
        if not changed:
            return None
        return dataclasses.replace(program, blocks=tuple(new_blocks))


# ------------------------------------------------------- op reordering
def _dataflow_deps(op: Op, in_block: set[int]) -> tuple[int, ...]:
    """The block-internal edges that carry data: every in-block op the
    op *reads*.  The lowering's declared ``deps`` are not a superset of
    these — a dataflow edge implied transitively through a
    serialization edge (e.g. ``MM1(Q)`` reading the layer input behind
    its ``MM1(K)`` chain edge) is omitted there, so reordering must
    recover ordering from the inputs themselves."""
    return tuple(
        sorted(
            {
                ref.key
                for ref in op.inputs
                if ref.kind == "op" and ref.key in in_block
            }
        )
    )


def _list_schedule_block(
    program: BlockProgram, blk: BlockIR
) -> tuple[list[int], dict[int, tuple[int, ...]], int, int] | None:
    """List-schedule one block's compute DAG onto its engines.

    Returns (new op order, new deps per op in old-id space, old compute
    makespan, new compute makespan) or None when no strict improvement
    exists.  Priority is the critical-path length over dataflow edges;
    per-engine occupancy is re-emitted as chain dependency edges so the
    ASAP cycle model reproduces the list schedule exactly.
    """
    in_block = set(blk.op_ids)
    loads = [i for i in blk.op_ids if program.ops[i].kind is OpKind.LOAD]
    comps = [i for i in blk.op_ids if program.ops[i].kind is not OpKind.LOAD]
    if len(comps) < 2:
        return None
    df = {i: _dataflow_deps(program.ops[i], in_block) for i in comps}
    succs: dict[int, list[int]] = {i: [] for i in comps}
    for i in comps:
        for d in df[i]:
            succs[d].append(i)
    # Critical-path priority (longest path to a sink), reverse order.
    cp: dict[int, int] = {}
    for i in reversed(comps):
        cp[i] = program.ops[i].cycles + max(
            (cp[s] for s in succs[i]), default=0
        )

    engine_free: dict[str, int] = {}
    engine_last: dict[str, int] = {}
    start: dict[int, int] = {}
    end: dict[int, int] = {}
    chain: dict[int, set[int]] = {i: set() for i in comps}
    pending = set(comps)
    while pending:
        ready = [i for i in pending if all(d in end for d in df[i])]
        est = {
            i: max(
                max((end[d] for d in df[i]), default=0),
                max(
                    (engine_free.get(e, 0) for e in program.ops[i].engines),
                    default=0,
                ),
            )
            for i in ready
        }
        # Earliest feasible start wins; critical path breaks ties.
        pick = min(ready, key=lambda i: (est[i], -cp[i], i))
        op = program.ops[pick]
        start[pick] = est[pick]
        end[pick] = est[pick] + op.cycles
        for e in op.engines:
            if e in engine_last:
                chain[pick].add(engine_last[e])
            engine_free[e] = end[pick]
            engine_last[e] = pick
        pending.remove(pick)

    old_span = block_compute_cycles(program, blk)
    new_span = max(end.values(), default=0)
    if new_span >= old_span:
        return None

    # Final order: Kahn over dataflow + chain edges, (start, id) priority.
    full_deps = {i: set(df[i]) | chain[i] for i in comps}
    indeg = {i: len(full_deps[i]) for i in comps}
    out_edges: dict[int, list[int]] = {i: [] for i in comps}
    for i in comps:
        for d in full_deps[i]:
            out_edges[d].append(i)
    frontier = sorted(
        (i for i in comps if indeg[i] == 0), key=lambda i: (start[i], i)
    )
    ordered: list[int] = []
    while frontier:
        frontier.sort(key=lambda i: (start[i], i))
        cur = frontier.pop(0)
        ordered.append(cur)
        for s in out_edges[cur]:
            indeg[s] -= 1
            if indeg[s] == 0:
                frontier.append(s)
    if len(ordered) != len(comps):
        raise PassError(f"reorder of '{blk.label}' produced a dependency cycle")

    deps_map: dict[int, tuple[int, ...]] = {}
    for i in comps:
        external = tuple(d for d in program.ops[i].deps if d not in in_block)
        deps_map[i] = tuple(sorted(set(external) | full_deps[i]))
    return loads + ordered, deps_map, old_span, new_span


@dataclass(frozen=True)
class ReorderOpsPass:
    """Dependency-aware op reordering inside each block.

    The lowering hardcodes one engine order (Fig 4.13's K/Q/MM2/V
    chain); this pass keeps only the dataflow edges, list-schedules
    each block's DAG onto its engines by critical path, and re-emits
    per-engine serialization edges for the new order.  Blocks touching
    the KV cache (CACHE/STREAM ops) are skipped — their op order is
    load-bearing for cache read-after-write.  A block's rewrite is kept
    only when its ASAP makespan strictly shrinks; op ids are then
    renumbered program-wide (the transform the fault-hook and Gantt
    regression tests pin down).
    """

    name: ClassVar[str] = "reorder_ops"

    blocks: tuple[str, ...] | None = None
    architecture: str = "A3"

    def run(self, program: BlockProgram) -> tuple[BlockProgram, tuple[str, ...]]:
        actions: list[str] = []
        new_orders: dict[str, list[int]] = {}
        deps_override: dict[int, tuple[int, ...]] = {}
        for blk in program.blocks:
            if self.blocks is not None and blk.label not in self.blocks:
                continue
            if any(
                program.ops[i].kind in (OpKind.CACHE, OpKind.STREAM)
                for i in blk.op_ids
            ):
                continue
            result = _list_schedule_block(program, blk)
            if result is None:
                continue
            order, deps_map, old_span, new_span = result
            new_orders[blk.label] = order
            deps_override.update(deps_map)
            actions.append(
                f"reordered {blk.label}: {old_span} -> {new_span} "
                "compute cycles"
            )
        if not new_orders:
            return program, ("no profitable reorder found",)
        # Rebuild block-major: blocks are serialized by the schedulers,
        # so concatenating per-block orders stays topological.
        order: list[int | Op] = []
        for blk in program.blocks:
            order.extend(new_orders.get(blk.label, list(blk.op_ids)))
        blocks = tuple(
            dataclasses.replace(
                blk, op_ids=tuple(new_orders.get(blk.label, blk.op_ids))
            )
            for blk in program.blocks
        )
        rebuilt = _rebuild_program(
            program, order, blocks, deps_override=deps_override
        )
        return rebuilt, tuple(actions)


# ------------------------------------------------------------- pipeline
@dataclass
class PassReport:
    """One pass's exact cycle/stall effect inside a pipeline run."""

    name: str
    actions: tuple[str, ...]
    cycles_before: int
    cycles_after: int
    psa_stalls_before: dict[str, float] = field(default_factory=dict)
    psa_stalls_after: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "pass": self.name,
            "actions": list(self.actions),
            "cycles_before": self.cycles_before,
            "cycles_after": self.cycles_after,
            "psa_stalls_before": dict(self.psa_stalls_before),
            "psa_stalls_after": dict(self.psa_stalls_after),
        }


@dataclass
class PipelineReport:
    """The ``repro-asr optimize`` artifact: per-pass deltas + totals."""

    architecture: str
    block_overhead: int
    cycles_before: int
    cycles_after: int
    passes: list[PassReport] = field(default_factory=list)

    @property
    def cycles_saved(self) -> int:
        return self.cycles_before - self.cycles_after

    def as_dict(self) -> dict:
        return {
            "architecture": self.architecture,
            "block_overhead_cycles": self.block_overhead,
            "cycles_before": self.cycles_before,
            "cycles_after": self.cycles_after,
            "cycles_saved": self.cycles_saved,
            "passes": [p.as_dict() for p in self.passes],
        }


@dataclass(frozen=True)
class PassPipeline:
    """An ordered, hashable pass composition.

    Hashability is load-bearing: the optimized lowerings below key
    their ``lru_cache`` on the pipeline, so an optimized program can
    never collide with the baseline (or another pipeline's) cache
    entry for the same model/fabric key.
    """

    passes: tuple[Any, ...]
    architecture: str = "A3"

    def __post_init__(self) -> None:
        for p in self.passes:
            if not isinstance(p, ProgramPass):
                raise PassError(f"{p!r} does not implement ProgramPass")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def apply(
        self, program: BlockProgram, *, collect_stalls: bool = False
    ) -> tuple[BlockProgram, PipelineReport]:
        overhead = _overhead(program)
        prog = program
        report = PipelineReport(
            architecture=self.architecture,
            block_overhead=overhead,
            cycles_before=_total_cycles(prog, self.architecture),
            cycles_after=0,
        )
        for p in self.passes:
            before = _total_cycles(prog, self.architecture)
            sb = (
                classify_stalls(prog, self.architecture, overhead).totals(".psa")
                if collect_stalls
                else {}
            )
            prog, actions = p.run(prog)
            after = _total_cycles(prog, self.architecture)
            sa = (
                classify_stalls(prog, self.architecture, overhead).totals(".psa")
                if collect_stalls
                else {}
            )
            report.passes.append(
                PassReport(p.name, actions, before, after, sb, sa)
            )
        prog = _with_meta(prog, passes=self.names)
        report.cycles_after = _total_cycles(prog, self.architecture)
        return prog, report

    def apply_program(self, program: BlockProgram) -> BlockProgram:
        prog, _ = self.apply(program)
        return prog


def default_pipeline(
    *,
    split_limit: int = 2,
    coalesce: bool = True,
    num_weight_buffers: int | None = None,
    reorder: bool = True,
    architecture: str = "A3",
) -> PassPipeline:
    """The stock pipeline behind ``repro-asr optimize``: stage exposed
    loads, coalesce dispatches, tune prefetch depth, reorder ops."""
    passes: list[Any] = []
    if split_limit > 0:
        passes.append(
            StageExposedLoadsPass(limit=split_limit, architecture=architecture)
        )
    if coalesce:
        passes.append(CoalesceLoadsPass(architecture=architecture))
    passes.append(
        PrefetchChannelPass(
            num_weight_buffers=num_weight_buffers, architecture=architecture
        )
    )
    if reorder:
        passes.append(ReorderOpsPass(architecture=architecture))
    return PassPipeline(passes=tuple(passes), architecture=architecture)


# ------------------------------------------------- optimized lowerings
@register_cached_lowering
@lru_cache(maxsize=32)
def lower_optimized_full_pass(
    model: ModelConfig,
    fabric: Fabric,
    s: int,
    pipeline: PassPipeline,
    t: int | None = None,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """The full encoder+decoder pass after ``pipeline`` — cached with
    the pipeline in the key, so optimized and baseline programs for the
    same configuration never collide."""
    base = lower_full_pass(model, fabric, s, t, parallel_heads)
    return pipeline.apply_program(base)


@register_cached_lowering
@lru_cache(maxsize=32)
def lower_optimized_encoder_stack(
    model: ModelConfig,
    fabric: Fabric,
    s: int,
    pipeline: PassPipeline,
    parallel_heads: int | None = None,
) -> BlockProgram:
    """The encoder stack after ``pipeline`` (prefill / streaming)."""
    base = lower_encoder_stack(model, fabric, s, parallel_heads)
    return pipeline.apply_program(base)


# ----------------------------------------------------- equivalence check
def semantic_op_counts(program: BlockProgram) -> dict[str, int]:
    """Op count per functional semantic (LOAD/timing-only ops excluded)
    — the quantity every pass must conserve exactly."""
    counts: dict[str, int] = {}
    for op in program.ops:
        if op.semantic is not None:
            counts[op.semantic] = counts.get(op.semantic, 0) + 1
    return dict(sorted(counts.items()))


def verify_semantics_preserved(
    base: BlockProgram,
    optimized: BlockProgram,
    root: Any,
    inputs: dict[str, np.ndarray | None],
    caches_base: Sequence[Any] | None = None,
    caches_optimized: Sequence[Any] | None = None,
) -> None:
    """Prove a transform semantics-preserving on concrete data.

    Raises :class:`PassError` unless the functional executor's outputs
    are bit-identical, the streamed weight bytes are conserved, and the
    semantic op counts match.
    """
    if semantic_op_counts(base) != semantic_op_counts(optimized):
        raise PassError(
            "semantic op counts diverged: "
            f"{semantic_op_counts(base)} != {semantic_op_counts(optimized)}"
        )
    if program_load_bytes(base) != program_load_bytes(optimized):
        raise PassError(
            "streamed weight bytes diverged: "
            f"{program_load_bytes(base)} != {program_load_bytes(optimized)}"
        )
    run_a = execute_program(base, root, inputs, caches_base)
    run_b = execute_program(optimized, root, inputs, caches_optimized)
    if run_a.outputs.keys() != run_b.outputs.keys():
        raise PassError(
            f"output names diverged: {sorted(run_a.outputs)} != "
            f"{sorted(run_b.outputs)}"
        )
    for name, arr in run_a.outputs.items():
        other = run_b.outputs[name]
        if arr.shape != other.shape or not np.array_equal(arr, other):
            raise PassError(f"output '{name}' is not bit-identical")
