"""Cycle-domain stall attribution and ILA-style introspection.

Real FPGA bring-up answers "why is this engine idle" with Integrated
Logic Analyzer cores and AXI performance monitors.  This module is the
simulator's equivalent: it turns the trace executor's per-engine
:class:`repro.hw.trace.Timeline` and the block schedule of
:mod:`repro.hw.scheduler` into an exact, per-cause account of every
idle cycle — the causality behind Table 5.1 and Figs 4.8–4.11 (A1
stalls on sequential weight loads, A2/A3 hide them behind prefetch).

Three pieces:

* **Stall classifier** — :func:`classify_stalls` labels every idle
  interval on every engine lane with one cause from the fixed taxonomy
  :data:`STALL_CAUSES`:

  - ``load_starved``  — the serial compute chain waited on an HBM
    weight load (the A1 story);
  - ``channel_contention`` — the binding load was itself serialized
    behind another load on the same HBM channel (the A2 single-channel
    story);
  - ``dependency``    — a work unit was executing but this lane waited
    on a producer op on another engine (head waves, bias/softmax
    hand-offs), or — on an HBM lane — the channel waited for a weight
    buffer to be released by compute;
  - ``overhead``      — the host dispatch ramp/drain serialized after a
    unit's ops (``block_overhead_cycles``);
  - ``no_work``       — the lane finished its last event (drain tail).

  Per engine the account is exactly conservative::

      busy + sum(stall causes) + no_work == makespan

* **Watchpoints + flight recorder** — declarative ILA-style triggers
  (:class:`Watchpoint`) over the event stream: engine idle longer than
  a threshold, channel bandwidth below a floor over a window, op label
  matching a regex.  Each hit captures a bounded ring-buffer window of
  surrounding events (:class:`FlightRecorder`) for dump/export.

* **Counter tracks** — :func:`counter_tracks` time-buckets per-engine
  utilization and per-HBM-channel bandwidth into Perfetto counter
  series, merged into the Chrome-trace exporter by
  :func:`repro.obs.export.chrome_trace`.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.hw.program import (
    BlockProgram,
    UnitSpan,
    program_unit_spans,
    trace_program_with_schedule,
)
from repro.hw.scheduler import ScheduleResult
from repro.hw.trace import Timeline, TraceEvent

__all__ = [
    "STALL_CAUSES",
    "StallInterval",
    "EngineStallBreakdown",
    "StallReport",
    "classify_stalls",
    "Watchpoint",
    "WatchpointHit",
    "FlightRecorder",
    "run_watchpoints",
    "default_watchpoints",
    "utilization_counters",
    "counter_tracks",
    "render_stall_dashboard",
]

#: The fixed stall taxonomy, in reporting order.
STALL_CAUSES = (
    "load_starved",
    "dependency",
    "channel_contention",
    "overhead",
    "no_work",
)

#: The causes that are genuine stalls (everything but the drain tail).
_WAIT_CAUSES = STALL_CAUSES[:-1]


@dataclass(frozen=True)
class StallInterval:
    """One labelled idle interval [start, end) on one engine lane.

    ``block`` names the work unit whose causal segment the interval
    fell in (a :class:`repro.hw.program.UnitSpan` label — one block
    under A3, a fused merge group under A1/A2), empty for the
    ``no_work`` drain tail.  It is what lets the differential profiler
    (:mod:`repro.obs.diffprof`) attribute a cycle delta to a
    (block, engine, cause) triple instead of just (engine, cause).
    """

    engine: str
    start: float
    end: float
    cause: str
    block: str = ""

    @property
    def cycles(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class EngineStallBreakdown:
    """Where one engine lane's cycles went, exactly."""

    engine: str
    makespan: float
    busy_cycles: float
    #: cause -> idle cycles, one entry per wait cause (no ``no_work``).
    stalls: Mapping[str, float]
    no_work_cycles: float

    @property
    def idle_cycles(self) -> float:
        return sum(self.stalls.values()) + self.no_work_cycles

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.makespan if self.makespan > 0 else 0.0

    @property
    def conservation_error(self) -> float:
        """``busy + sum(stalls) + no_work - makespan`` (must be 0)."""
        return self.busy_cycles + self.idle_cycles - self.makespan

    def dominant_stall(self) -> str | None:
        """The wait cause eating the most cycles (None when fully busy)."""
        best = max(self.stalls, key=lambda c: self.stalls[c])
        return best if self.stalls[best] > 0 else None


@dataclass
class StallReport:
    """The full per-engine stall attribution of one traced program."""

    architecture: str
    makespan: float
    engines: dict[str, EngineStallBreakdown]
    #: Every labelled idle interval, sorted by (engine, start).
    intervals: tuple[StallInterval, ...]
    unit_spans: tuple[UnitSpan, ...] = field(default_factory=tuple)

    def totals(self, engine_filter: str = "") -> dict[str, float]:
        """Cycles per cause (including ``no_work``) summed over lanes
        whose name contains ``engine_filter`` (all lanes when empty)."""
        out = {cause: 0.0 for cause in STALL_CAUSES}
        for name, bd in self.engines.items():
            if engine_filter and engine_filter not in name:
                continue
            for cause, cycles in bd.stalls.items():
                out[cause] += cycles
            out["no_work"] += bd.no_work_cycles
        return out

    def dominant_cause(self, engine_filter: str = ".psa") -> str | None:
        """The wait cause eating the most cycles over matching lanes."""
        totals = self.totals(engine_filter)
        best = max(_WAIT_CAUSES, key=lambda c: totals[c])
        return best if totals[best] > 0 else None

    def intervals_on(self, engine: str) -> list[StallInterval]:
        return [iv for iv in self.intervals if iv.engine == engine]

    def conservation_errors(self) -> dict[str, float]:
        """Engine -> conservation residual (every value must be 0.0)."""
        return {
            name: bd.conservation_error for name, bd in self.engines.items()
        }

    def verify_conservation(self) -> None:
        """Raise unless busy + stalls + no_work == makespan on every lane."""
        broken = {
            name: err
            for name, err in self.conservation_errors().items()
            if err != 0.0
        }
        if broken:
            raise ValueError(
                f"stall attribution is not conservative: {broken} "
                f"(makespan {self.makespan})"
            )

    def as_dict(self) -> dict:
        """JSON-ready dump (the ``repro-asr inspect --json`` payload)."""
        return {
            "architecture": self.architecture,
            "makespan_cycles": self.makespan,
            "totals": self.totals(),
            "psa_totals": self.totals(".psa"),
            "engines": {
                name: {
                    "busy_cycles": bd.busy_cycles,
                    "utilization": bd.utilization,
                    "stalls": dict(bd.stalls),
                    "no_work_cycles": bd.no_work_cycles,
                }
                for name, bd in self.engines.items()
            },
        }


# ------------------------------------------------------------ classifier
def _load_wait_cause(unit: UnitSpan, spans: Sequence[UnitSpan]) -> str:
    """Why ``unit``'s load exposed a stall: serialized behind another
    load on its channel (contention) or simply slower than the compute
    it had to hide behind (starvation)."""
    if not unit.load_engine:
        return "load_starved"
    for other in spans:
        if other is unit or other.load_engine != unit.load_engine:
            continue
        if other.load_end == unit.load_start and other.load_end > other.load_start:
            return "channel_contention"
    return "load_starved"


def _causal_segments(
    spans: Sequence[UnitSpan],
) -> list[tuple[float, float, str, str]]:
    """Partition [0, last compute end) into causally-labelled segments.

    The block-schedule compute chain is strictly serial, so global time
    decomposes exactly into: per-unit op execution (idle lanes there
    wait on producers → ``dependency``), the host dispatch overhead
    serialized after each unit (``overhead``), and the exposed gaps
    before a unit starts, bound by its weight load (``load_starved`` or
    ``channel_contention``).  Each segment carries the label of the
    unit it belongs to.
    """
    segments: list[tuple[float, float, str, str]] = []
    prev_end = 0.0
    for unit in spans:
        if unit.compute_start > prev_end:
            segments.append(
                (prev_end, unit.compute_start,
                 _load_wait_cause(unit, spans), unit.label)
            )
        ops_end = unit.compute_start + unit.compute_span
        if ops_end > unit.compute_start:
            segments.append(
                (unit.compute_start, ops_end, "dependency", unit.label)
            )
        if unit.compute_end > ops_end:
            segments.append((ops_end, unit.compute_end, "overhead", unit.label))
        prev_end = unit.compute_end
    return segments


def classify_stalls(
    program: BlockProgram,
    architecture: str = "A3",
    block_overhead: int | None = None,
    *,
    timeline: Timeline | None = None,
    sched: ScheduleResult | None = None,
) -> StallReport:
    """Attribute every idle cycle of a traced program to one cause.

    Traces the program under ``architecture`` (pass ``timeline`` and
    ``sched`` from an earlier :func:`trace_program_with_schedule` call
    to reuse that scheduling pass), then walks each engine lane's idle
    gaps and intersects them with the causal segments of the block
    schedule.  The result satisfies, per engine, exactly::

        busy + sum(stall causes) + no_work == makespan
    """
    if block_overhead is None:
        block_overhead = program.fabric.calibration.block_overhead_cycles
    if timeline is None or sched is None:
        timeline, sched = trace_program_with_schedule(
            program, architecture, block_overhead
        )
    spans, _ = program_unit_spans(program, architecture, block_overhead, sched=sched)
    segments = _causal_segments(spans)
    makespan = timeline.makespan

    engines: dict[str, EngineStallBreakdown] = {}
    intervals: list[StallInterval] = []
    for engine in timeline.engines():
        busy_ivs = timeline.busy_intervals(engine)
        busy = sum(e - s for s, e in busy_ivs)
        lane_end = busy_ivs[-1][1] if busy_ivs else 0.0
        stalls = {cause: 0.0 for cause in _WAIT_CAUSES}
        for g0, g1 in timeline.idle_gaps(engine):
            for s0, s1, cause, block in segments:
                lo, hi = max(g0, s0), min(g1, s1)
                if hi > lo:
                    stalls[cause] += hi - lo
                    intervals.append(StallInterval(engine, lo, hi, cause, block))
                if s0 >= g1:
                    break
        no_work = makespan - lane_end
        if no_work > 0:
            intervals.append(
                StallInterval(engine, lane_end, makespan, "no_work")
            )
        engines[engine] = EngineStallBreakdown(
            engine=engine,
            makespan=makespan,
            busy_cycles=busy,
            stalls=stalls,
            no_work_cycles=max(no_work, 0.0),
        )
    intervals.sort(key=lambda iv: (iv.engine, iv.start))
    return StallReport(
        architecture=str(architecture),
        makespan=makespan,
        engines=engines,
        intervals=tuple(intervals),
        unit_spans=tuple(spans),
    )


# ------------------------------------------- watchpoints / flight recorder
_WATCHPOINT_KINDS = frozenset({"idle", "label", "bandwidth"})


@dataclass(frozen=True)
class Watchpoint:
    """One declarative ILA-style trigger over the event stream.

    * ``kind="idle"`` — fires when an engine matching the ``engine``
      regex starts an event after sitting idle ``>= threshold`` cycles.
    * ``kind="label"`` — fires on every event whose label matches the
      ``pattern`` regex (e.g. ``"MM4.*"``), on matching engines.
    * ``kind="bandwidth"`` — fires for every ``window``-cycle bucket in
      which a matching lane's busy fraction drops below ``threshold``
      (evaluated up to the lane's last event, so the drain tail does
      not trigger).
    """

    name: str
    kind: str
    engine: str = ""
    threshold: float = 0.0
    window: float = 0.0
    pattern: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _WATCHPOINT_KINDS:
            raise ValueError(
                f"unknown watchpoint kind '{self.kind}'; "
                f"expected one of {sorted(_WATCHPOINT_KINDS)}"
            )
        if self.kind == "idle" and self.threshold <= 0:
            raise ValueError("idle watchpoints need a positive threshold")
        if self.kind == "label" and not self.pattern:
            raise ValueError("label watchpoints need a pattern")
        if self.kind == "bandwidth":
            if not 0 < self.threshold <= 1:
                raise ValueError(
                    "bandwidth watchpoints need a busy-fraction threshold in (0, 1]"
                )
            if self.window <= 0:
                raise ValueError("bandwidth watchpoints need a positive window")


@dataclass(frozen=True)
class WatchpointHit:
    """One trigger firing, with its captured flight-recorder window."""

    watchpoint: str
    cycle: float
    engine: str
    detail: str
    window: tuple[TraceEvent, ...] = ()

    def as_dict(self) -> dict:
        return {
            "watchpoint": self.watchpoint,
            "cycle": self.cycle,
            "engine": self.engine,
            "detail": self.detail,
            "window": [
                {
                    "engine": e.engine,
                    "label": e.label,
                    "start": e.start,
                    "end": e.end,
                    "kind": e.kind,
                }
                for e in self.window
            ],
        }


class FlightRecorder:
    """Bounded ring buffer of the most recent trace events.

    The simulator equivalent of an ILA capture buffer: events are
    recorded in replay order and the oldest are dropped once
    ``capacity`` is reached, so a watchpoint hit can snapshot the
    surrounding context without holding the whole trace.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)

    def record(self, event: TraceEvent) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    def snapshot(self) -> tuple[TraceEvent, ...]:
        return tuple(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


def run_watchpoints(
    timeline: Timeline,
    watchpoints: Iterable[Watchpoint],
    capacity: int = 64,
) -> list[WatchpointHit]:
    """Replay a timeline through the flight recorder and evaluate every
    watchpoint; returns the hits sorted by trigger cycle."""
    compiled = [
        (
            wp,
            re.compile(wp.engine) if wp.engine else None,
            re.compile(wp.pattern) if wp.pattern else None,
        )
        for wp in watchpoints
    ]
    events = sorted(timeline.events, key=lambda e: (e.start, e.end, e.engine))
    recorder = FlightRecorder(capacity)
    last_end: dict[str, float] = {}
    hits: list[WatchpointHit] = []
    for event in events:
        recorder.record(event)
        for wp, engine_re, pattern_re in compiled:
            if engine_re is not None and not engine_re.search(event.engine):
                continue
            if wp.kind == "idle":
                gap = event.start - last_end.get(event.engine, 0.0)
                if gap >= wp.threshold:
                    hits.append(
                        WatchpointHit(
                            wp.name,
                            event.start,
                            event.engine,
                            f"idle {gap:g} cycles before '{event.label}'",
                            recorder.snapshot(),
                        )
                    )
            elif wp.kind == "label" and pattern_re.search(event.label):
                hits.append(
                    WatchpointHit(
                        wp.name,
                        event.start,
                        event.engine,
                        f"op '{event.label}' matched /{wp.pattern}/",
                        recorder.snapshot(),
                    )
                )
        last_end[event.engine] = max(
            last_end.get(event.engine, 0.0), event.end
        )
    for wp, engine_re, _ in compiled:
        if wp.kind != "bandwidth":
            continue
        for engine in timeline.engines():
            if engine_re is not None and not engine_re.search(engine):
                continue
            ivs = timeline.busy_intervals(engine)
            if not ivs:
                continue
            lane_end = ivs[-1][1]
            t = 0.0
            while t < lane_end:
                t1 = min(t + wp.window, lane_end)
                busy = sum(
                    min(e, t1) - max(s, t) for s, e in ivs if e > t and s < t1
                )
                frac = busy / (t1 - t)
                if frac < wp.threshold:
                    nearby = tuple(
                        e
                        for e in events
                        if e.engine == engine
                        and e.start < t1 + wp.window
                        and e.end > t - wp.window
                    )[:capacity]
                    hits.append(
                        WatchpointHit(
                            wp.name,
                            t,
                            engine,
                            f"busy fraction {frac:.2f} < {wp.threshold:.2f} "
                            f"over [{t:g}, {t1:g})",
                            nearby,
                        )
                    )
                t = t1
    hits.sort(key=lambda h: (h.cycle, h.engine, h.watchpoint))
    return hits


def default_watchpoints(
    timeline: Timeline,
    idle_fraction: float = 0.05,
    bandwidth_floor: float = 0.25,
) -> list[Watchpoint]:
    """The stock trigger set of ``repro-asr inspect``: a PSA idle
    longer than ``idle_fraction`` of the makespan, and an HBM channel
    whose busy fraction drops below ``bandwidth_floor`` over an eighth
    of the makespan."""
    span = timeline.makespan
    if span <= 0:
        return []
    return [
        Watchpoint(
            "psa-idle",
            "idle",
            engine=r"\.psa",
            threshold=max(span * idle_fraction, 1.0),
        ),
        Watchpoint(
            "hbm-low-bw",
            "bandwidth",
            engine=r"^hbm",
            threshold=bandwidth_floor,
            window=max(span / 8.0, 1.0),
        ),
    ]


# --------------------------------------------------------- counter tracks
def utilization_counters(
    timeline: Timeline,
    bucket_cycles: float | None = None,
    engines: Sequence[str] | None = None,
    span: float | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """Time-bucketed busy fraction per engine lane.

    Returns ``engine -> [(bucket_start_cycle, busy_fraction), ...]``
    covering [0, span).  ``bucket_cycles`` defaults to 1/64 of the
    span; ``span`` defaults to the timeline's makespan.  Passing an
    explicit ``span`` (and ``engines``) puts two different timelines on
    the same bucket grid — what the differential profiler needs to
    subtract one run's utilization from another's sample-for-sample.
    """
    span = timeline.makespan if span is None else float(span)
    if span <= 0:
        return {}
    if bucket_cycles is None:
        bucket_cycles = max(span / 64.0, 1.0)
    if bucket_cycles <= 0:
        raise ValueError("bucket_cycles must be positive")
    names = list(engines) if engines is not None else timeline.engines()
    out: dict[str, list[tuple[float, float]]] = {}
    for engine in names:
        ivs = timeline.busy_intervals(engine)
        samples: list[tuple[float, float]] = []
        t = 0.0
        while t < span:
            t1 = min(t + bucket_cycles, span)
            busy = sum(
                min(e, t1) - max(s, t) for s, e in ivs if e > t and s < t1
            )
            samples.append((t, busy / (t1 - t)))
            t = t1
        out[engine] = samples
    return out


def counter_tracks(
    timeline: Timeline, bucket_cycles: float | None = None
) -> dict[str, list[tuple[float, float]]]:
    """Perfetto-ready counter series: per-engine utilization tracks
    plus per-HBM-channel bandwidth tracks (busy fraction of the
    channel, i.e. attained/peak), time-bucketed over the makespan.
    Feed to :func:`repro.obs.export.chrome_trace` as ``counters``."""
    return {
        (
            f"bandwidth:{engine}"
            if engine.startswith("hbm")
            else f"utilization:{engine}"
        ): samples
        for engine, samples in utilization_counters(
            timeline, bucket_cycles
        ).items()
    }


# -------------------------------------------------------------- dashboard
def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(fraction, 1.0)) * width))
    return "#" * filled + "." * (width - filled)


def render_stall_dashboard(
    report: StallReport,
    hits: Sequence[WatchpointHit] = (),
    width: int = 30,
    max_hits: int = 8,
) -> str:
    """Text dashboard: per-engine utilization bars with the per-cause
    stall account, aggregate cause totals, and watchpoint hits."""
    from repro.analysis.report import format_table

    lines = [
        f"stall attribution: {report.architecture}, "
        f"makespan {report.makespan:g} cycles",
        "",
    ]
    rows = []
    for name, bd in report.engines.items():
        rows.append(
            [
                name,
                f"|{_bar(bd.utilization, width)}|",
                f"{bd.utilization:6.1%}",
                *(f"{bd.stalls[c]:g}" for c in _WAIT_CAUSES),
                f"{bd.no_work_cycles:g}",
            ]
        )
    lines.append(
        format_table(
            ["engine", "utilization", "busy%", "load", "dep", "chan",
             "ovh", "no-work"],
            rows,
        )
    )
    totals = report.totals()
    lane_cycles = report.makespan * len(report.engines)
    lines.append("")
    lines.append("stall causes over all lanes:")
    for cause in STALL_CAUSES:
        frac = totals[cause] / lane_cycles if lane_cycles > 0 else 0.0
        lines.append(
            f"  {cause:<18} {totals[cause]:>12g} cycles  ({frac:.1%} of lane time)"
        )
    psa_dominant = report.dominant_cause(".psa")
    lines.append(
        "  PSA lanes dominated by: "
        + (psa_dominant if psa_dominant else "(no stalls — fully busy)")
    )
    lines.append("")
    if hits:
        lines.append(f"watchpoint hits ({len(hits)}):")
        for hit in list(hits)[:max_hits]:
            lines.append(
                f"  {hit.watchpoint:<12} @{hit.cycle:<10g} {hit.engine:<16} "
                f"{hit.detail}  [{len(hit.window)} events captured]"
            )
        if len(hits) > max_hits:
            lines.append(f"  ... {len(hits) - max_hits} more hits")
    else:
        lines.append("watchpoint hits: none")
    return "\n".join(lines)
