"""Cepstral mean and variance normalization.

ESPnet applies global CMVN (computed over the training corpus, stored as
``cmvn.ark``) to the log-mel features before the encoder; the Fig 5.1
decode log in the paper shows the same ``dump.sh ... cmvn.ark`` step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CmvnStats:
    """Per-dimension mean and standard deviation of a feature corpus."""

    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=np.float64)
        std = np.asarray(self.std, dtype=np.float64)
        if mean.ndim != 1 or std.ndim != 1:
            raise ValueError("mean and std must be 1-D")
        if mean.shape != std.shape:
            raise ValueError("mean and std must have equal shape")
        if np.any(std <= 0):
            raise ValueError("std must be strictly positive")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "std", std)

    @property
    def dim(self) -> int:
        return self.mean.shape[0]


def compute_cmvn(
    feature_matrices: list[np.ndarray], std_floor: float = 1e-8
) -> CmvnStats:
    """Accumulate global CMVN statistics over a list of (T, D) matrices."""
    if not feature_matrices:
        raise ValueError("need at least one feature matrix")
    dim = np.asarray(feature_matrices[0]).shape[1]
    count = 0
    total = np.zeros(dim, dtype=np.float64)
    total_sq = np.zeros(dim, dtype=np.float64)
    for feats in feature_matrices:
        f = np.asarray(feats, dtype=np.float64)
        if f.ndim != 2 or f.shape[1] != dim:
            raise ValueError("all feature matrices must be (T, D) with equal D")
        count += f.shape[0]
        total += f.sum(axis=0)
        total_sq += (f * f).sum(axis=0)
    if count == 0:
        raise ValueError("feature matrices contain no frames")
    mean = total / count
    var = np.maximum(total_sq / count - mean * mean, 0.0)
    std = np.sqrt(var)
    return CmvnStats(mean=mean, std=np.maximum(std, std_floor))


def apply_cmvn(features: np.ndarray, stats: CmvnStats) -> np.ndarray:
    """Normalize (T, D) features to zero mean / unit variance per dim."""
    f = np.asarray(features, dtype=np.float64)
    if f.ndim != 2 or f.shape[1] != stats.dim:
        raise ValueError(
            f"features must be (T, {stats.dim}); got shape {f.shape}"
        )
    return (f - stats.mean) / stats.std
