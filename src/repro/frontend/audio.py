"""Synthetic utterance synthesis and PCM codec helpers.

LibriSpeech ships 16 kHz 16-bit PCM read speech.  We cannot redistribute
it, so :func:`synthesize_utterance` produces a formant-style waveform in
which every character of the transcript is rendered as a short segment
with a character-specific pair of formant frequencies plus pink-ish
noise.  The mapping is deterministic given the seed, which makes the
grapheme-to-acoustics task *learnable* by the toy training pipeline and
exercises exactly the same frontend code path as real speech.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: LibriSpeech sampling rate.
DEFAULT_SAMPLE_RATE = 16_000


@dataclass(frozen=True)
class SynthesisConfig:
    """Parameters of the formant-style character synthesizer."""

    sample_rate: int = DEFAULT_SAMPLE_RATE
    #: Duration of the acoustic segment rendered for one character (s).
    char_duration_s: float = 0.06
    #: Lowest formant frequency assigned to a character (Hz).
    f1_base_hz: float = 220.0
    #: Spacing between per-character formants (Hz).
    f1_step_hz: float = 35.0
    #: Second formant offset (Hz).
    f2_offset_hz: float = 1200.0
    #: Amplitude of the additive noise floor.
    noise_level: float = 0.02
    #: Peak amplitude of the synthesized waveform, pre-quantization.
    amplitude: float = 0.35

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if self.char_duration_s <= 0:
            raise ValueError("char_duration_s must be positive")
        if not 0 <= self.noise_level < 1:
            raise ValueError("noise_level must be in [0, 1)")
        if not 0 < self.amplitude <= 1:
            raise ValueError("amplitude must be in (0, 1]")

    @property
    def samples_per_char(self) -> int:
        return int(round(self.char_duration_s * self.sample_rate))


def _char_formants(char_index: int, config: SynthesisConfig) -> tuple[float, float]:
    """Deterministic (f1, f2) formant pair for a character index."""
    f1 = config.f1_base_hz + config.f1_step_hz * char_index
    f2 = f1 + config.f2_offset_hz + 17.0 * char_index
    return f1, f2


def synthesize_utterance(
    char_indices: np.ndarray | list[int],
    config: SynthesisConfig | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Render a transcript (as character indices) to a float waveform.

    Parameters
    ----------
    char_indices:
        Sequence of non-negative character indices.
    config:
        Synthesis parameters; defaults mirror LibriSpeech framing.
    rng:
        Source of the additive noise; defaults to a fixed-seed generator
        so that synthesis is reproducible.

    Returns
    -------
    numpy.ndarray
        1-D float64 waveform in [-1, 1].
    """
    config = config or SynthesisConfig()
    rng = rng or np.random.default_rng(0)
    indices = np.asarray(char_indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError("char_indices must be one-dimensional")
    if indices.size == 0:
        return np.zeros(0, dtype=np.float64)
    if np.any(indices < 0):
        raise ValueError("char_indices must be non-negative")

    n = config.samples_per_char
    t = np.arange(n, dtype=np.float64) / config.sample_rate
    # Raised-cosine segment envelope avoids clicks at character joins.
    envelope = 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(n) / max(n - 1, 1)))

    segments = np.empty((indices.size, n), dtype=np.float64)
    for row, idx in enumerate(indices):
        f1, f2 = _char_formants(int(idx), config)
        tone = 0.7 * np.sin(2.0 * np.pi * f1 * t) + 0.3 * np.sin(
            2.0 * np.pi * f2 * t
        )
        segments[row] = envelope * tone

    waveform = segments.reshape(-1)
    waveform = config.amplitude * waveform
    waveform = waveform + config.noise_level * rng.standard_normal(waveform.size)
    return np.clip(waveform, -1.0, 1.0)


def pcm16_encode(waveform: np.ndarray) -> np.ndarray:
    """Quantize a [-1, 1] float waveform to 16-bit PCM samples."""
    w = np.asarray(waveform, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("waveform must be one-dimensional")
    if w.size and (np.max(w) > 1.0 or np.min(w) < -1.0):
        raise ValueError("waveform must lie in [-1, 1] before encoding")
    scaled = np.round(w * 32767.0)
    return np.clip(scaled, -32768, 32767).astype(np.int16)


def pcm16_decode(samples: np.ndarray) -> np.ndarray:
    """Dequantize 16-bit PCM samples back to a [-1, 1] float waveform."""
    s = np.asarray(samples)
    if s.dtype != np.int16:
        raise ValueError("pcm16_decode expects int16 samples")
    return s.astype(np.float64) / 32767.0
