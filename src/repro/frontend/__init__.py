"""Host-side audio frontend.

The paper runs data preparation and feature extraction on the host CPU
(Section 3.1): pre-emphasis, 25 ms framing with a window function, STFT,
an 80-dimensional triangular mel filterbank, then a 2D convolutional
subsampling block feeding the Transformer encoder.  This package
implements that pipeline plus a synthetic utterance synthesizer standing
in for LibriSpeech audio (see DESIGN.md, substitutions).
"""

from repro.frontend.audio import (
    SynthesisConfig,
    pcm16_decode,
    pcm16_encode,
    synthesize_utterance,
)
from repro.frontend.cmvn import CmvnStats, apply_cmvn, compute_cmvn
from repro.frontend.features import FrontendConfig, LogMelFrontend
from repro.frontend.framing import frame_signal, hamming_window, hann_window
from repro.frontend.mel import hz_to_mel, mel_filterbank, mel_to_hz
from repro.frontend.preemphasis import preemphasis
from repro.frontend.stft import magnitude_spectrogram, power_spectrogram, stft
from repro.frontend.subsampling import Conv2dSubsampling

__all__ = [
    "SynthesisConfig",
    "pcm16_decode",
    "pcm16_encode",
    "synthesize_utterance",
    "CmvnStats",
    "apply_cmvn",
    "compute_cmvn",
    "FrontendConfig",
    "LogMelFrontend",
    "frame_signal",
    "hamming_window",
    "hann_window",
    "hz_to_mel",
    "mel_filterbank",
    "mel_to_hz",
    "preemphasis",
    "magnitude_spectrogram",
    "power_spectrogram",
    "stft",
    "Conv2dSubsampling",
]
