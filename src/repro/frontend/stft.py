"""Short-Time Fourier Transform on framed signals.

The paper performs an STFT on 25 ms frames: each row of the resulting
complex matrix is a time frame, each column a frequency bin, and the
magnitude of each entry is the amplitude of that band at that time
(Section 3.1).
"""

from __future__ import annotations

import numpy as np

from repro.frontend.framing import frame_signal


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (FFT size convention)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 1 << (n - 1).bit_length()


def stft(
    signal: np.ndarray,
    frame_length: int,
    frame_shift: int,
    window: np.ndarray | None = None,
    n_fft: int | None = None,
) -> np.ndarray:
    """Complex STFT of shape ``(num_frames, n_fft // 2 + 1)``.

    ``n_fft`` defaults to the next power of two above ``frame_length``.
    Only the non-negative-frequency half is returned (the input is real).
    """
    frames = frame_signal(signal, frame_length, frame_shift, window=window)
    if n_fft is None:
        n_fft = next_power_of_two(frame_length)
    if n_fft < frame_length:
        raise ValueError("n_fft must be >= frame_length")
    return np.fft.rfft(frames, n=n_fft, axis=1)


def magnitude_spectrogram(
    signal: np.ndarray,
    frame_length: int,
    frame_shift: int,
    window: np.ndarray | None = None,
    n_fft: int | None = None,
) -> np.ndarray:
    """Magnitude of the STFT: ``|STFT|``."""
    return np.abs(stft(signal, frame_length, frame_shift, window, n_fft))


def power_spectrogram(
    signal: np.ndarray,
    frame_length: int,
    frame_shift: int,
    window: np.ndarray | None = None,
    n_fft: int | None = None,
) -> np.ndarray:
    """Power spectrum ``|STFT|^2 / n_fft`` (Kaldi-style normalization)."""
    spec = stft(signal, frame_length, frame_shift, window, n_fft)
    n = 2 * (spec.shape[1] - 1) if spec.shape[1] > 1 else 1
    return (spec.real**2 + spec.imag**2) / float(n)
