"""End-to-end log-mel feature pipeline (the host-side "Feature
Generation" stage of Fig 5.1).

Combines pre-emphasis, 25 ms / 10 ms framing with a window, STFT,
80-dim triangular mel filterbank and log compression into one callable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frontend.framing import hamming_window, ms_to_samples
from repro.frontend.mel import apply_filterbank, log_energies, mel_filterbank
from repro.frontend.preemphasis import DEFAULT_PREEMPHASIS, preemphasis
from repro.frontend.stft import next_power_of_two, power_spectrogram


@dataclass(frozen=True)
class FrontendConfig:
    """Parameters of the log-mel frontend (paper Section 3.1 defaults)."""

    sample_rate: int = 16_000
    frame_length_ms: float = 25.0
    frame_shift_ms: float = 10.0
    num_mel_filters: int = 80
    preemphasis_alpha: float = DEFAULT_PREEMPHASIS
    low_freq: float = 20.0
    high_freq: float | None = None

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if self.frame_length_ms <= 0 or self.frame_shift_ms <= 0:
            raise ValueError("frame timings must be positive")
        if self.frame_shift_ms > self.frame_length_ms:
            raise ValueError("frame_shift_ms must not exceed frame_length_ms")
        if self.num_mel_filters <= 0:
            raise ValueError("num_mel_filters must be positive")

    @property
    def frame_length(self) -> int:
        return ms_to_samples(self.frame_length_ms, self.sample_rate)

    @property
    def frame_shift(self) -> int:
        return ms_to_samples(self.frame_shift_ms, self.sample_rate)

    @property
    def n_fft(self) -> int:
        return next_power_of_two(self.frame_length)


class LogMelFrontend:
    """Waveform -> (num_frames, num_mel_filters) log-mel features."""

    def __init__(self, config: FrontendConfig | None = None) -> None:
        self.config = config or FrontendConfig()
        cfg = self.config
        self._window = hamming_window(cfg.frame_length)
        self._bank = mel_filterbank(
            cfg.num_mel_filters,
            cfg.n_fft,
            cfg.sample_rate,
            low_freq=cfg.low_freq,
            high_freq=cfg.high_freq,
        )

    @property
    def filterbank(self) -> np.ndarray:
        """The (num_filters, bins) triangular filterbank matrix (copy)."""
        return self._bank.copy()

    def __call__(self, waveform: np.ndarray) -> np.ndarray:
        """Extract log-mel features from a [-1, 1] float waveform."""
        cfg = self.config
        x = preemphasis(waveform, cfg.preemphasis_alpha)
        power = power_spectrogram(
            x, cfg.frame_length, cfg.frame_shift, self._window, cfg.n_fft
        )
        return log_energies(apply_filterbank(power, self._bank))

    def num_output_frames(self, num_samples: int) -> int:
        """Frames produced from a waveform of ``num_samples`` samples."""
        cfg = self.config
        if num_samples < cfg.frame_length:
            return 0
        return 1 + (num_samples - cfg.frame_length) // cfg.frame_shift
