"""Pre-emphasis filtering (Section 3.1 of the paper).

The signal is passed through a first-order high-pass FIR filter
``y[n] = x[n] - alpha * x[n-1]`` which boosts the high-frequency content
lost during recording and improves the effective SNR of the mel features.
"""

from __future__ import annotations

import numpy as np

#: Conventional pre-emphasis coefficient used by Kaldi/ESPnet fbank.
DEFAULT_PREEMPHASIS = 0.97


def preemphasis(signal: np.ndarray, alpha: float = DEFAULT_PREEMPHASIS) -> np.ndarray:
    """Apply the pre-emphasis filter ``y[n] = x[n] - alpha x[n-1]``.

    The first sample is passed through unchanged (``y[0] = x[0]``),
    matching the common speech-toolkit convention.
    """
    if not 0.0 <= alpha < 1.0:
        raise ValueError("alpha must be in [0, 1)")
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    if x.size == 0:
        return x.copy()
    y = np.empty_like(x)
    y[0] = x[0]
    np.subtract(x[1:], alpha * x[:-1], out=y[1:])
    return y


def deemphasis(signal: np.ndarray, alpha: float = DEFAULT_PREEMPHASIS) -> np.ndarray:
    """Invert :func:`preemphasis` (useful for round-trip testing)."""
    if not 0.0 <= alpha < 1.0:
        raise ValueError("alpha must be in [0, 1)")
    y = np.asarray(signal, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    x = np.empty_like(y)
    acc = 0.0
    for n in range(y.size):  # IIR recurrence; sequential by nature.
        acc = y[n] + alpha * acc
        x[n] = acc
    return x
