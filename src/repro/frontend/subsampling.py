"""Convolutional subsampling front block.

The paper passes the 80-dim log-mel features through a 2D convolutional
layer followed by a max-pool layer before the Transformer encoder
(Section 3.1).  We implement the standard two-stage form used by ESPnet:
two (conv 3x3 + ReLU + max-pool 2x2) stages, which reduce the time axis
by 4x, followed by a linear projection onto ``d_model``.  The time
reduction is what turns a multi-second utterance into the short
"sequence length" (s = 4..32) the accelerator operates on.
"""

from __future__ import annotations

import numpy as np


def conv2d(
    image: np.ndarray, kernels: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Valid-mode multi-channel 2-D convolution (cross-correlation).

    ``image`` has shape ``(C_in, H, W)``; ``kernels`` has shape
    ``(C_out, C_in, kH, kW)``.  Returns ``(C_out, H-kH+1, W-kW+1)``.
    Implemented with a sliding-window view + one einsum so the hot loop
    is a single BLAS-backed contraction.
    """
    img = np.asarray(image, dtype=np.float64)
    ker = np.asarray(kernels, dtype=np.float64)
    if img.ndim != 3 or ker.ndim != 4:
        raise ValueError("image must be (C,H,W) and kernels (O,C,kH,kW)")
    c_out, c_in, kh, kw = ker.shape
    if img.shape[0] != c_in:
        raise ValueError(
            f"channel mismatch: image has {img.shape[0]}, kernels expect {c_in}"
        )
    if img.shape[1] < kh or img.shape[2] < kw:
        raise ValueError("image smaller than kernel")
    windows = np.lib.stride_tricks.sliding_window_view(img, (kh, kw), axis=(1, 2))
    # windows: (C_in, H', W', kH, kW)
    out = np.einsum("chwij,ocij->ohw", windows, ker, optimize=True)
    if bias is not None:
        b = np.asarray(bias, dtype=np.float64)
        if b.shape != (c_out,):
            raise ValueError(f"bias must have shape ({c_out},)")
        out = out + b[:, None, None]
    return out


def max_pool2d(image: np.ndarray, pool: int = 2) -> np.ndarray:
    """Non-overlapping max pooling over the trailing two axes.

    Trailing rows/columns that do not fill a complete pool window are
    dropped (floor semantics), matching the hardware-friendly layout.
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 3:
        raise ValueError("image must be (C, H, W)")
    if pool <= 0:
        raise ValueError("pool must be positive")
    c, h, w = img.shape
    h2, w2 = h // pool, w // pool
    if h2 == 0 or w2 == 0:
        raise ValueError("image too small for pool size")
    trimmed = img[:, : h2 * pool, : w2 * pool]
    return trimmed.reshape(c, h2, pool, w2, pool).max(axis=(2, 4))


class Conv2dSubsampling:
    """Two-stage conv/pool subsampler projecting features to d_model.

    Stage k: conv 3x3 (valid) -> ReLU -> max-pool 2x2.  After two stages
    the time axis has shrunk by ~4x; the flattened channel x frequency
    planes of each remaining frame are linearly projected to ``d_model``.
    """

    KERNEL = 3
    POOL = 2

    def __init__(
        self,
        feature_dim: int,
        d_model: int,
        channels: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        if feature_dim <= 0 or d_model <= 0 or channels <= 0:
            raise ValueError("feature_dim, d_model and channels must be positive")
        rng = rng or np.random.default_rng(0)
        self.feature_dim = feature_dim
        self.d_model = d_model
        self.channels = channels

        k = self.KERNEL
        scale1 = 1.0 / np.sqrt(k * k)
        scale2 = 1.0 / np.sqrt(channels * k * k)
        self.conv1_w = scale1 * rng.standard_normal((channels, 1, k, k))
        self.conv1_b = np.zeros(channels)
        self.conv2_w = scale2 * rng.standard_normal((channels, channels, k, k))
        self.conv2_b = np.zeros(channels)

        freq_after = self.output_freq_dim(feature_dim)
        if freq_after <= 0:
            raise ValueError(
                f"feature_dim {feature_dim} too small for two conv/pool stages"
            )
        flat = channels * freq_after
        self.proj_w = rng.standard_normal((flat, d_model)) / np.sqrt(flat)
        self.proj_b = np.zeros(d_model)

    @classmethod
    def _stage_len(cls, n: int) -> int:
        """Length of one axis after conv 3x3 valid + max-pool 2x2."""
        return max((n - (cls.KERNEL - 1)) // cls.POOL, 0)

    @classmethod
    def output_time_dim(cls, num_frames: int) -> int:
        """Sequence length produced from ``num_frames`` input frames."""
        return cls._stage_len(cls._stage_len(num_frames))

    @classmethod
    def output_freq_dim(cls, feature_dim: int) -> int:
        return cls._stage_len(cls._stage_len(feature_dim))

    @classmethod
    def min_input_frames(cls) -> int:
        """Fewest input frames that yield a non-empty output sequence."""
        # Invert output_time_dim(n) >= 1 analytically for k=3, pool=2.
        n = 1
        while cls.output_time_dim(n) < 1:
            n += 1
        return n

    def __call__(self, features: np.ndarray) -> np.ndarray:
        """Map (T, feature_dim) log-mel features to (s, d_model)."""
        f = np.asarray(features, dtype=np.float64)
        if f.ndim != 2 or f.shape[1] != self.feature_dim:
            raise ValueError(
                f"features must be (T, {self.feature_dim}); got {f.shape}"
            )
        if self.output_time_dim(f.shape[0]) < 1:
            raise ValueError(
                f"need at least {self.min_input_frames()} frames; got {f.shape[0]}"
            )
        x = f[None, :, :]  # (1, T, F) single input channel
        x = np.maximum(conv2d(x, self.conv1_w, self.conv1_b), 0.0)
        x = max_pool2d(x, self.POOL)
        x = np.maximum(conv2d(x, self.conv2_w, self.conv2_b), 0.0)
        x = max_pool2d(x, self.POOL)
        # (C, s, F') -> (s, C*F') -> (s, d_model)
        c, s, freq = x.shape
        flat = x.transpose(1, 0, 2).reshape(s, c * freq)
        return flat @ self.proj_w + self.proj_b
