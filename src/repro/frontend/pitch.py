"""Pitch features (the ``make_fbank_pitch.sh`` stage of Fig 5.1).

The paper's ESPnet recipe extracts filterbank **and pitch** features.
This module implements a compact Kaldi-style pitch tracker: per frame,
a normalized autocorrelation (NCCF) over the plausible F0 lag range
picks the pitch period; the three emitted features per frame are the
probability-of-voicing proxy (the NCCF peak), log-pitch, and
delta-log-pitch — appended to the 80 mel bins for an 83-dim frontend
when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frontend.framing import frame_signal, ms_to_samples


@dataclass(frozen=True)
class PitchConfig:
    """Pitch-tracking parameters (speech-typical defaults)."""

    sample_rate: int = 16_000
    frame_length_ms: float = 25.0
    frame_shift_ms: float = 10.0
    min_f0_hz: float = 60.0
    max_f0_hz: float = 400.0

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if not 0 < self.min_f0_hz < self.max_f0_hz:
            raise ValueError("need 0 < min_f0 < max_f0")
        if self.max_f0_hz >= self.sample_rate / 2:
            raise ValueError("max_f0 must be below Nyquist")
        max_lag = int(np.ceil(self.sample_rate / self.min_f0_hz))
        if max_lag >= ms_to_samples(self.frame_length_ms, self.sample_rate):
            raise ValueError(
                "frame too short to observe one period of min_f0"
            )

    @property
    def min_lag(self) -> int:
        return int(np.floor(self.sample_rate / self.max_f0_hz))

    @property
    def max_lag(self) -> int:
        return int(np.ceil(self.sample_rate / self.min_f0_hz))


def nccf(frame: np.ndarray, min_lag: int, max_lag: int) -> np.ndarray:
    """Normalized cross-correlation over the lag range (inclusive).

    ``nccf[l - min_lag] = <x[:-l], x[l:]> / sqrt(|x[:-l]|^2 |x[l:]|^2)``.
    """
    x = np.asarray(frame, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("frame must be 1-D")
    if not 1 <= min_lag <= max_lag < x.size:
        raise ValueError("need 1 <= min_lag <= max_lag < frame length")
    out = np.empty(max_lag - min_lag + 1)
    for i, lag in enumerate(range(min_lag, max_lag + 1)):
        a = x[: x.size - lag]
        b = x[lag:]
        denom = np.sqrt((a @ a) * (b @ b))
        out[i] = (a @ b) / denom if denom > 1e-12 else 0.0
    return out


def track_pitch(
    waveform: np.ndarray, config: PitchConfig | None = None
) -> np.ndarray:
    """Per-frame (voicing, f0_hz) estimates, shape (frames, 2)."""
    cfg = config or PitchConfig()
    frame_len = ms_to_samples(cfg.frame_length_ms, cfg.sample_rate)
    frame_shift = ms_to_samples(cfg.frame_shift_ms, cfg.sample_rate)
    frames = frame_signal(waveform, frame_len, frame_shift)
    out = np.zeros((frames.shape[0], 2))
    for i, frame in enumerate(frames):
        scores = nccf(frame, cfg.min_lag, cfg.max_lag)
        peak = float(scores.max())
        # A periodic signal correlates at every multiple of its period;
        # picking the *smallest* lag within a whisker of the peak avoids
        # the classic downward octave error.
        candidates = np.flatnonzero(scores >= peak - 0.02)
        best = int(candidates[0]) if candidates.size else int(np.argmax(scores))
        out[i, 0] = max(peak, 0.0)
        out[i, 1] = cfg.sample_rate / (cfg.min_lag + best)
    return out


def pitch_features(
    waveform: np.ndarray, config: PitchConfig | None = None
) -> np.ndarray:
    """Kaldi-style 3-dim pitch features: (pov, log-f0, delta-log-f0)."""
    tracked = track_pitch(waveform, config)
    if tracked.shape[0] == 0:
        return np.zeros((0, 3))
    pov = tracked[:, 0]
    log_f0 = np.log(tracked[:, 1])
    delta = np.zeros_like(log_f0)
    if log_f0.size > 1:
        delta[1:] = np.diff(log_f0)
    return np.stack([pov, log_f0, delta], axis=1)


def fbank_pitch_features(
    waveform: np.ndarray,
    frontend=None,
    pitch_config: PitchConfig | None = None,
) -> np.ndarray:
    """Concatenate log-mel fbank and pitch features (83-dim default)."""
    from repro.frontend.features import LogMelFrontend

    frontend = frontend or LogMelFrontend()
    fbank = frontend(waveform)
    pitch = pitch_features(waveform, pitch_config)
    frames = min(fbank.shape[0], pitch.shape[0])
    if frames == 0:
        raise ValueError("waveform too short for feature extraction")
    return np.concatenate([fbank[:frames], pitch[:frames]], axis=1)
