"""Triangular mel filterbanks (80 dimensions in the paper).

Triangular filters on the mel scale approximate the frequency response
of the human auditory system; the paper applies 80 of them to the STFT
power spectrum to form the encoder input features.
"""

from __future__ import annotations

import numpy as np


def hz_to_mel(hz: np.ndarray | float) -> np.ndarray | float:
    """Convert Hz to mels using the HTK formula."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel: np.ndarray | float) -> np.ndarray | float:
    """Inverse of :func:`hz_to_mel`."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


def mel_filterbank(
    num_filters: int,
    n_fft: int,
    sample_rate: int,
    low_freq: float = 20.0,
    high_freq: float | None = None,
) -> np.ndarray:
    """Build a bank of triangular mel filters.

    Returns a matrix of shape ``(num_filters, n_fft // 2 + 1)`` whose
    rows are the triangular filter responses over FFT bins.  Multiplying
    a power spectrogram of shape ``(frames, n_fft // 2 + 1)`` by the
    transpose of this matrix yields the filterbank energies.
    """
    if num_filters <= 0:
        raise ValueError("num_filters must be positive")
    if n_fft <= 0:
        raise ValueError("n_fft must be positive")
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    nyquist = sample_rate / 2.0
    if high_freq is None:
        high_freq = nyquist
    if not 0 <= low_freq < high_freq <= nyquist:
        raise ValueError(
            f"need 0 <= low_freq < high_freq <= Nyquist; got "
            f"low={low_freq}, high={high_freq}, nyquist={nyquist}"
        )

    num_bins = n_fft // 2 + 1
    # Filter corner points, equally spaced on the mel scale.
    mel_points = np.linspace(
        hz_to_mel(low_freq), hz_to_mel(high_freq), num_filters + 2
    )
    hz_points = np.asarray(mel_to_hz(mel_points))
    bin_freqs = np.arange(num_bins, dtype=np.float64) * sample_rate / n_fft

    left = hz_points[:-2, None]
    center = hz_points[1:-1, None]
    right = hz_points[2:, None]
    up = (bin_freqs[None, :] - left) / np.maximum(center - left, 1e-12)
    down = (right - bin_freqs[None, :]) / np.maximum(right - center, 1e-12)
    bank = np.maximum(0.0, np.minimum(up, down))
    return bank


def apply_filterbank(power_spec: np.ndarray, bank: np.ndarray) -> np.ndarray:
    """Project a power spectrogram through a filterbank.

    ``power_spec`` has shape ``(frames, bins)``; ``bank`` has shape
    ``(num_filters, bins)``.  Returns ``(frames, num_filters)``.
    """
    p = np.asarray(power_spec, dtype=np.float64)
    b = np.asarray(bank, dtype=np.float64)
    if p.ndim != 2 or b.ndim != 2:
        raise ValueError("power_spec and bank must be 2-D")
    if p.shape[1] != b.shape[1]:
        raise ValueError(
            f"bin mismatch: spectrogram has {p.shape[1]} bins, "
            f"bank has {b.shape[1]}"
        )
    return p @ b.T


def log_energies(fbank_energies: np.ndarray, floor: float = 1e-10) -> np.ndarray:
    """Natural log of filterbank energies with a numerical floor."""
    if floor <= 0:
        raise ValueError("floor must be positive")
    return np.log(np.maximum(np.asarray(fbank_energies, dtype=np.float64), floor))
