"""Short-time framing and analysis windows.

The paper splits the pre-emphasized signal into 25 ms frames with a
10 ms hop and applies a window function before the STFT.  Framing is
implemented with a stride trick (a view, not a copy) per the
scientific-Python guidance on avoiding needless array copies; the window
multiply then materializes the frames.
"""

from __future__ import annotations

import numpy as np

DEFAULT_FRAME_LENGTH_MS = 25.0
DEFAULT_FRAME_SHIFT_MS = 10.0


def hann_window(length: int) -> np.ndarray:
    """Periodic Hann window of the given length."""
    if length <= 0:
        raise ValueError("length must be positive")
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * np.arange(length) / length)


def hamming_window(length: int) -> np.ndarray:
    """Periodic Hamming window of the given length."""
    if length <= 0:
        raise ValueError("length must be positive")
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * np.arange(length) / length)


def num_frames(num_samples: int, frame_length: int, frame_shift: int) -> int:
    """Number of complete frames obtainable from ``num_samples``."""
    if frame_length <= 0 or frame_shift <= 0:
        raise ValueError("frame_length and frame_shift must be positive")
    if num_samples < frame_length:
        return 0
    return 1 + (num_samples - frame_length) // frame_shift


def frame_signal(
    signal: np.ndarray,
    frame_length: int,
    frame_shift: int,
    window: np.ndarray | None = None,
) -> np.ndarray:
    """Slice a 1-D signal into overlapping windowed frames.

    Returns an array of shape ``(num_frames, frame_length)``.  Without a
    window the result is a read-only strided view of the input; with a
    window a new array is returned.
    """
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("signal must be one-dimensional")
    n = num_frames(x.size, frame_length, frame_shift)
    if n == 0:
        return np.zeros((0, frame_length), dtype=np.float64)
    frames = np.lib.stride_tricks.sliding_window_view(x, frame_length)[
        ::frame_shift
    ][:n]
    if window is None:
        return frames
    w = np.asarray(window, dtype=np.float64)
    if w.shape != (frame_length,):
        raise ValueError(
            f"window shape {w.shape} does not match frame_length {frame_length}"
        )
    return frames * w


def ms_to_samples(duration_ms: float, sample_rate: int) -> int:
    """Convert a duration in milliseconds to a sample count."""
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    return int(round(duration_ms * sample_rate / 1000.0))
