"""Configuration objects shared across the library.

Three configuration layers mirror the paper's setup:

* :class:`ModelConfig` — the Transformer dimensions (ESPnet
  ``transformer_base``: 12 encoders, 6 decoders, d_model=512, 8 heads,
  d_ff=2048).
* :class:`HardwareConfig` — the accelerator fabric (Alveo U50: two SLRs,
  eight 2x64 partially-unrolled systolic arrays, 300 MHz, HBM channels).
* :class:`CalibrationConfig` — fitted timing constants that map the
  structural cycle model onto the paper's measured latencies (see
  DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class ModelConfig:
    """Dimensions of the end-to-end ASR Transformer.

    Defaults reproduce the model deployed in the paper (Section 3.4).
    """

    d_model: int = 512
    num_heads: int = 8
    d_ff: int = 2048
    num_encoders: int = 12
    num_decoders: int = 6
    vocab_size: int = 31
    max_seq_len: int = 512
    #: Number of mel filterbank channels produced by the host frontend.
    feature_dim: int = 80

    def __post_init__(self) -> None:
        _require(self.d_model > 0, "d_model must be positive")
        _require(self.num_heads > 0, "num_heads must be positive")
        _require(
            self.d_model % self.num_heads == 0,
            f"d_model ({self.d_model}) must be divisible by "
            f"num_heads ({self.num_heads})",
        )
        _require(self.d_ff > 0, "d_ff must be positive")
        _require(self.num_encoders >= 0, "num_encoders must be >= 0")
        _require(self.num_decoders >= 0, "num_decoders must be >= 0")
        _require(self.vocab_size >= 2, "vocab_size must be >= 2")
        _require(self.max_seq_len > 0, "max_seq_len must be positive")
        _require(self.feature_dim > 0, "feature_dim must be positive")

    @property
    def d_k(self) -> int:
        """Per-head key/query/value dimension (d_model / h = 64)."""
        return self.d_model // self.num_heads

    def scaled(self, factor: int) -> "ModelConfig":
        """Return a proportionally smaller config (used for toy training)."""
        _require(factor >= 1, "factor must be >= 1")
        _require(self.d_model % factor == 0, "factor must divide d_model")
        return replace(
            self,
            d_model=self.d_model // factor,
            d_ff=self.d_ff // factor,
        )

    def with_depth(self, num_encoders: int, num_decoders: int) -> "ModelConfig":
        return replace(
            self, num_encoders=num_encoders, num_decoders=num_decoders
        )


#: Alveo U50 resource totals (Table 5.2 "Available Resources").
ALVEO_U50_RESOURCES: dict[str, int] = {
    "BRAM_18K": 2688,
    "DSP": 5952,
    "FF": 1743360,
    "LUT": 871680,
}


@dataclass(frozen=True)
class HardwareConfig:
    """Static description of the accelerator fabric.

    Defaults reproduce the design evaluated in the paper: eight 2x64
    partially-unrolled systolic arrays (PSAs) evenly split between the
    two Super Logic Regions of an Alveo U50, clocked at 300 MHz.
    """

    num_slrs: int = 2
    psas_per_slr: int = 4
    psa_rows: int = 2
    psa_cols: int = 64
    clock_mhz: float = 300.0
    #: HBM channels available to each SLR kernel for weight streaming.
    hbm_channels_per_slr: int = 2
    #: Effective sustained bandwidth of one HBM channel as seen by the
    #: M-AXI burst reader (GB/s).  Calibrated; the raw HBM2 channel peak
    #: is far higher but HLS burst inefficiency dominates.
    hbm_channel_gbps: float = 2.8232
    #: PCIe Gen3 x16 effective host->device bandwidth (GB/s).
    pcie_gbps: float = 12.0
    #: Bytes per weight element (fp32 single precision model).
    bytes_per_element: int = 4
    #: Width of the parallel vector adders (one s x 64 adder per PSA).
    adder_width: int = 64
    #: Pipeline the partial-product accumulators with the PSAs
    #: (Fig 4.3); False exposes every fold (ablation baseline).
    pipelined_adders: bool = True
    #: FPGA board power draw used by the energy model (W).
    board_power_w: float = 34.2
    resources: dict[str, int] = field(
        default_factory=lambda: dict(ALVEO_U50_RESOURCES)
    )

    def __post_init__(self) -> None:
        _require(self.num_slrs >= 1, "num_slrs must be >= 1")
        _require(self.psas_per_slr >= 1, "psas_per_slr must be >= 1")
        _require(self.psa_rows >= 1, "psa_rows must be >= 1")
        _require(self.psa_cols >= 1, "psa_cols must be >= 1")
        _require(self.clock_mhz > 0, "clock_mhz must be positive")
        _require(self.hbm_channels_per_slr >= 1, "need >= 1 HBM channel")
        _require(self.hbm_channel_gbps > 0, "hbm_channel_gbps must be > 0")
        _require(self.pcie_gbps > 0, "pcie_gbps must be > 0")
        _require(self.bytes_per_element in (1, 2, 4, 8), "unsupported precision")
        _require(self.adder_width >= 1, "adder_width must be >= 1")
        _require(self.board_power_w > 0, "board_power_w must be positive")

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash chokes on the resources
        # dict; canonicalize it so configs stay usable as cache keys
        # (the program lowerings memoize on them).  Consistent with the
        # generated __eq__, which compares the dict by value.
        values = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value = tuple(sorted(value.items()))
            values.append(value)
        return hash(tuple(values))

    @property
    def total_psas(self) -> int:
        return self.num_slrs * self.psas_per_slr

    @property
    def cycle_ns(self) -> float:
        """Duration of one fabric clock cycle in nanoseconds."""
        return 1e3 / self.clock_mhz

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles * self.cycle_ns * 1e-6

    def ms_to_cycles(self, ms: float) -> float:
        return ms * 1e6 / self.cycle_ns


@dataclass(frozen=True)
class CalibrationConfig:
    """Fitted constants mapping the structural cycle model to hardware.

    A Vitis HLS design never achieves the textbook cycle count: the
    systolic arrays run at an effective initiation interval above one,
    BRAM ports are contended between the weight writer and the compute
    loops, and each kernel launch pays host/controller overhead.  These
    multipliers are fitted once against Table 5.1 of the paper by
    ``examples/fit_calibration.py`` and are then used unchanged for every
    other experiment.
    """

    #: Effective initiation-interval multiplier for the attention-side
    #: matmuls (MM1, MM2, MM3, MM4).
    attention_ii: float = 5.719
    #: Effective initiation-interval multiplier for the FFN matmuls
    #: (MM5, MM6), which stream much larger weight panels from BRAM.
    ffn_ii: float = 10.026
    #: Fixed cycles charged per PSA kernel invocation (HLS loop prologue,
    #: AXI handshakes, controller dispatch).
    invocation_overhead_cycles: int = 2037
    #: Fixed cycles of host/OpenCL orchestration per encoder/decoder block
    #: that cannot be overlapped with loads.
    block_overhead_cycles: int = 9578
    #: Multiplier >= 1 applied to raw HBM transfer time to model burst
    #: setup and address-generation gaps.
    load_efficiency: float = 1.18

    def __post_init__(self) -> None:
        _require(self.attention_ii >= 1.0, "attention_ii must be >= 1")
        _require(self.ffn_ii >= 1.0, "ffn_ii must be >= 1")
        _require(
            self.invocation_overhead_cycles >= 0,
            "invocation_overhead_cycles must be >= 0",
        )
        _require(
            self.block_overhead_cycles >= 0,
            "block_overhead_cycles must be >= 0",
        )
        _require(self.load_efficiency >= 1.0, "load_efficiency must be >= 1")


def default_model_config(**overrides: Any) -> ModelConfig:
    """The paper's model configuration, optionally overridden."""
    return replace(ModelConfig(), **overrides) if overrides else ModelConfig()


def default_hardware_config(**overrides: Any) -> HardwareConfig:
    """The paper's hardware configuration, optionally overridden."""
    return (
        replace(HardwareConfig(), **overrides) if overrides else HardwareConfig()
    )
