"""repro — reproduction of "Hardware Accelerator for Transformer based
End-to-End Automatic Speech Recognition System" (RAW 2023 / IIIT-H
thesis, 2023) as a pure-Python functional + cycle-level simulator.

Public API tour
---------------

* :mod:`repro.config` — model / hardware / calibration configuration.
* :mod:`repro.frontend` — host-side audio feature pipeline.
* :mod:`repro.model` — reference NumPy Transformer (golden model).
* :mod:`repro.hw` — the accelerator simulator (systolic arrays, SLR
  scheduling, A1/A2/A3 load-compute overlap, resource model).
* :mod:`repro.decoding` — greedy/beam decoding and WER.
* :mod:`repro.baselines` — calibrated CPU/GPU latency + energy models.
* :mod:`repro.asr` — the end-to-end ASR pipeline gluing it together.
* :mod:`repro.train` — NumPy autograd + trainer for the toy WER study.
"""

from repro.config import (
    ALVEO_U50_RESOURCES,
    CalibrationConfig,
    HardwareConfig,
    ModelConfig,
    default_hardware_config,
    default_model_config,
)

__version__ = "1.0.0"

__all__ = [
    "ALVEO_U50_RESOURCES",
    "CalibrationConfig",
    "HardwareConfig",
    "ModelConfig",
    "default_hardware_config",
    "default_model_config",
    "__version__",
]
