"""Command-line interface.

    repro-asr latency   [--arch A3] [--seq 4 8 16 32]
    repro-asr crossover
    repro-asr resources [--seq 32] [--psa-rows 2]
    repro-asr dse       [--seq 32]
    repro-asr precision
    repro-asr transcribe [--words N] [--seed N] [--beam K] [--json]
    repro-asr inventory
    repro-asr program   [--seq 32] [--arch A3] [--ops 24] [--width 100]
    repro-asr profile   [--out DIR] [--words N] [--seed N] [--beam K] [--arch A3]
    repro-asr metrics   [--words N] [--seed N] [--beam K] [--arch A3]
    repro-asr bench run     [--out DIR] [--repeats K] [--quick]
    repro-asr bench compare BASELINE CURRENT [--wall-tol F] [--fail-on-wall]
                            [--artifact-hint PATH]
    repro-asr bench report  [--seq 32] [--arch A3]
    repro-asr diff      [--base A3] [--cand A4] [--seq 32] [--top N]
                        [--json] [--out PATH] [--trace PATH]
                        [--snapshots BASE CURRENT] [--profiles BASE CAND]
                        [--serve --cand-arch A2 --cand-max-batch B ...]
    repro-asr serve-sim [--arrival poisson] [--loads 0.5,2,8] [--requests N]
                        [--max-batch B] [--kv-budget-bytes N] [--slo-ms F]
                        [--json PATH] [--trace PATH] [--timeseries PATH]
                        [--slo-report PATH]
    repro-asr slo       [--load 8] [--requests N] [--slo-ms F]
                        [--slo-target F] [--json]

Each subcommand prints one of the paper's analyses from the simulator;
``transcribe`` runs the full E2E pipeline on a synthetic utterance.
``profile`` re-runs it inside a telemetry session and writes a
Perfetto-loadable Chrome trace plus Prometheus/JSONL metric dumps;
``metrics`` prints the Prometheus exposition text to stdout.  ``bench``
is the performance-trajectory harness: ``run`` writes a
schema-versioned ``BENCH_<n>.json`` snapshot, ``compare`` gates it
against a baseline (exact-match on cycle counts, noise-aware on
wall-clock), ``report`` prints the bottleneck attribution.
``diff`` is the differential profiler: it compares any two runs — two
live architectures (A4 is the optimizer's synthesized schedule), two
saved ``runprofile.json`` artifacts, two bench snapshots with embedded
profiles, or two serving variants (``--serve``) — and prints a delta
waterfall whose leaves sum *exactly* to the makespan delta.
``serve-sim`` sweeps the multi-tenant serving simulator over offered
loads and reports p50/p95/p99 latency, goodput and the saturation
bottleneck; with ``--trace/--timeseries/--slo-report`` it re-runs the
heaviest load instrumented and writes a merged Perfetto trace (device
lanes + per-request lifecycle tracks), a deterministic JSONL event
log, sampled virtual-time series and the SLO report.  ``slo`` prints
the SLO dashboard for one offered load (exit 1 if burn-rate alerts
fired).
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence

from repro.analysis.inventory import weight_inventory
from repro.analysis.report import format_table
from repro.config import HardwareConfig
from repro.hw.controller import LatencyModel
from repro.hw.dse import head_parallelism_sweep
from repro.hw.resources import estimate_resources


def _cmd_latency(args: argparse.Namespace) -> int:
    lm = LatencyModel()
    rows = []
    for s in args.seq:
        for arch in args.arch:
            rows.append([s, arch, lm.latency_ms(s, arch)])
    print(format_table(["s", "arch", "latency ms"], rows))
    return 0


def _cmd_crossover(args: argparse.Namespace) -> int:
    del args
    lm = LatencyModel()
    rows = []
    for s in range(2, 41, 2):
        load, compute = lm.mha_ffn_load_compute(s)
        rows.append([s, load, compute])
    print(format_table(["s", "load ms", "compute ms"], rows))
    print(f"compute exceeds load from s = {lm.crossover_sequence_length()}")
    return 0


def _cmd_resources(args: argparse.Namespace) -> int:
    hw = HardwareConfig(psa_rows=args.psa_rows)
    est = estimate_resources(hw, seq_len=args.seq)
    util = est.utilization()
    rows = [
        [name, used, est.available[name], f"{util[name]:.1%}"]
        for name, used in est.as_dict().items()
    ]
    print(format_table(["resource", "used", "available", "util"], rows))
    print(f"binding resource: {est.binding_resource()}; "
          f"{'fits' if est.fits() else 'DOES NOT FIT'} the device")
    return 0 if est.fits() else 1


def _cmd_dse(args: argparse.Namespace) -> int:
    points = head_parallelism_sweep(s=args.seq)
    rows = [
        [p.parallel_heads, p.concurrent_psas_per_head, p.latency_ms]
        for p in points
    ]
    print(format_table(["parallel heads", "PSAs/head", "latency ms"], rows))
    return 0


def _cmd_precision(args: argparse.Namespace) -> int:
    del args
    from repro.quant.analysis import precision_sweep

    rows = [
        [
            p.precision.name,
            p.encoder_load_ms,
            p.crossover_s,
            f"{p.lut_utilization_base:.0%}",
            p.best_psa_rows,
            p.latency_ms_best,
        ]
        for p in precision_sweep()
    ]
    print(format_table(
        ["precision", "enc load ms", "crossover", "LUT", "best rows", "best ms"],
        rows,
    ))
    return 0


def _result_breakdown(result) -> dict:
    """JSON-ready latency breakdown of one transcription result."""
    return {
        "text": result.text,
        "espnet_text": result.espnet_text,
        "tokens": [int(t) for t in result.tokens],
        "sequence_length": result.sequence_length,
        "latency_ms": {
            "host_modeled": result.modeled_host_ms,
            "host_measured": result.measured_host_ms,
            "accelerator_prefill": result.accelerator_ms,
            "decode_total": result.decode_total_ms,
            "decode_per_token": result.decode_per_token_ms,
            "e2e": result.e2e_ms,
        },
        "throughput_seq_per_s": result.throughput_seq_per_s,
        "details": dict(result.details),
    }


def _cmd_transcribe(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.asr.dataset import LibriSpeechLikeDataset
    from repro.asr.pipeline import AsrPipeline
    from repro.model.params import init_transformer_params

    params = init_transformer_params(seed=args.seed)
    pipeline = AsrPipeline(params, hw_seq_len=32)
    utt = LibriSpeechLikeDataset(seed=args.seed).generate(
        1, min_words=args.words, max_words=args.words
    )[0]
    beam = args.beam if args.beam > 1 else None
    if getattr(args, "json", False):
        with obs.telemetry() as session:
            result = pipeline.transcribe(utt.waveform, beam_size=beam)
        payload = _result_breakdown(result)
        payload["reference"] = utt.transcript
        payload["metrics"] = session.metrics.as_dict()
        print(json.dumps(payload, indent=2))
        return 0
    result = pipeline.transcribe(utt.waveform, beam_size=beam)
    print(f"reference:  {utt.transcript!r}")
    print(f"recognized: {result.text!r}   ({result.espnet_text})")
    print(f"s={result.sequence_length}  host {result.modeled_host_ms:.1f} ms  "
          f"accel {result.accelerator_ms:.1f} ms  e2e {result.e2e_ms:.1f} ms")
    return 0


def _profiled_run(args: argparse.Namespace):
    """One synthetic utterance under a telemetry session, plus the
    trace-executor probe of the accelerator's block program.  Returns
    (result, session, timeline, pipeline)."""
    from repro import obs
    from repro.asr.dataset import LibriSpeechLikeDataset
    from repro.asr.pipeline import AsrPipeline
    from repro.model.params import init_transformer_params

    params = init_transformer_params(seed=args.seed)
    pipeline = AsrPipeline(params, hw_seq_len=32, architecture=args.arch)
    utt = LibriSpeechLikeDataset(seed=args.seed).generate(
        1, min_words=args.words, max_words=args.words
    )[0]
    with obs.telemetry() as session:
        result = pipeline.transcribe(
            utt.waveform, beam_size=args.beam if args.beam > 1 else None
        )
        timeline = obs.record_program_metrics(
            pipeline.accelerator.program(), architecture=args.arch
        )
    return result, session, timeline, pipeline


def _cmd_profile(args: argparse.Namespace) -> int:
    import pathlib

    from repro import obs

    result, session, timeline, pipeline = _profiled_run(args)
    hardware = pipeline.accelerator.latency_model.hardware
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    from repro.hw.introspect import counter_tracks

    trace_path = out / "trace.json"
    trace_path.write_text(
        obs.chrome_trace_json(
            timeline,
            session.spans.records,
            clock_mhz=hardware.clock_mhz,
            metadata={"architecture": args.arch, "seed": args.seed},
            counters=counter_tracks(timeline) if timeline is not None else None,
        )
    )
    prom_path = out / "metrics.prom"
    prom_path.write_text(obs.prometheus_text(session.metrics))
    jsonl_path = out / "events.jsonl"
    jsonl_path.write_text(
        "".join(f"{line}\n" for line in obs.jsonl_lines(
            session.metrics, session.spans.records
        ))
    )
    # Exact-integer run profile of the accelerator's block program —
    # the offline input of `repro-asr diff --profiles A B`.
    from repro.obs.diffprof import profile_run

    program = pipeline.accelerator.program()
    prof = profile_run(
        program,
        args.arch,
        label=f"{args.arch} s={program.meta.get('s')} seed={args.seed}",
    )
    profile_path = out / "runprofile.json"
    profile_path.write_text(json.dumps(prof.as_dict(), indent=2) + "\n")
    print(f"recognized: {result.text!r}  "
          f"(s={result.sequence_length}, e2e {result.e2e_ms:.1f} ms)")
    print(f"chrome trace: {trace_path}  (open in https://ui.perfetto.dev)")
    print(f"prometheus:   {prom_path}")
    print(f"jsonl:        {jsonl_path}")
    print(f"run profile:  {profile_path}  (diff with `repro-asr diff "
          f"--profiles A B`)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import obs

    _, session, _, _ = _profiled_run(args)
    print(obs.prometheus_text(session.metrics), end="")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import build_snapshot, default_scenarios, run_suite, write_snapshot

    scenarios = default_scenarios(quick=args.quick, repeats=args.repeats)
    results = run_suite(scenarios)
    snapshot = build_snapshot(
        results,
        config={"repeats": args.repeats, "quick": bool(args.quick)},
    )
    path = write_snapshot(snapshot, args.out)
    rows = [
        [
            r.name,
            f"{r.wall.median:.2f}",
            f"{r.wall.spread:.2f}",
            len(r.cycles),
        ]
        for r in (results[name] for name in sorted(results))
    ]
    print(format_table(
        ["scenario", "wall median ms", "spread ms", "cycle metrics"], rows
    ))
    print(f"snapshot: {path}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import pathlib

    from repro.bench import compare_snapshots, latest_snapshot_path, load_snapshot

    current = pathlib.Path(args.current)
    if current.is_dir():
        found = latest_snapshot_path(current)
        if found is None:
            print(f"no BENCH_<n>.json snapshot found in {current}")
            return 2
        current = found
    try:
        baseline_snap = load_snapshot(args.baseline)
        current_snap = load_snapshot(current)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    report = compare_snapshots(
        baseline_snap,
        current_snap,
        wall_tolerance=args.wall_tol,
        fail_on_wall=args.fail_on_wall,
    )
    print(f"baseline: {args.baseline}")
    print(f"current:  {current}")
    print(report.format())
    if not report.passed and args.artifact_hint:
        print(f"differential waterfall artifact: {args.artifact_hint} "
              f"(per-(block, engine, cause) attribution of the drift)")
    return 0 if report.passed else 1


def _instrumented_serving_run(
    config,
    arrival_kind: str,
    load_rps: float,
    num_requests: int,
    seed: int,
    sample_cycles: int,
    slo_target: float,
):
    """One serving run with the vtrace recorder + sampler installed,
    held to an SLO objective.  Returns (result, recorder, sampler,
    slo_report) — the raw material of every serving observability
    artifact (merged Perfetto trace, JSONL event log, time series,
    SLO report)."""
    from repro.obs.vtrace import VSampler, VTraceRecorder
    from repro.serving import (
        ContinuousBatchingScheduler,
        SloObjective,
        evaluate_slo,
        make_arrival_model,
        synthesize_requests,
    )

    arrival = make_arrival_model(arrival_kind, load_rps, seed=seed)
    requests = synthesize_requests(arrival, num_requests, seed=seed)
    recorder = VTraceRecorder()
    sampler = VSampler(cadence_cycles=sample_cycles)
    sched = ContinuousBatchingScheduler(
        config, vtrace=recorder, sampler=sampler
    )
    result = sched.run(requests)
    objective = SloObjective(latency_ms=config.slo_ms, target=slo_target)
    report = evaluate_slo(result, recorder.events, objective, recorder=recorder)
    return result, recorder, sampler, report


def _serving_stall_rate_tracks(result, sampler) -> dict:
    """Perfetto counter tracks of PSA stall-cause *rates*: the PR-5
    per-cause lane-time fraction of each phase's block program, scaled
    by the instantaneous rate at which the device runs that phase
    (from the sampler's cumulative cycle series)."""
    from repro.obs.vtrace import rate_series
    from repro.serving import phase_stall_report

    lm = LatencyModel()
    tracks: dict = {}
    for phase, cum_name in (
        ("prefill", "prefill_cycles"),
        ("decode", "decode_cycles"),
    ):
        series = sampler.get(cum_name)
        if series is None or len(series) < 2:
            continue
        rates = rate_series(series)
        _, report = phase_stall_report(
            lm, phase, result.config.s, result.config.architecture
        )
        psa_lanes = sum(1 for name in report.engines if ".psa" in name)
        lane_time = report.makespan * max(psa_lanes, 1)
        for cause, cycles in report.totals(".psa").items():
            if cycles <= 0:
                continue
            frac = cycles / lane_time
            tracks[f"serving:stall_rate:{phase}:{cause}"] = [
                (cycle, rate * frac) for cycle, rate in rates
            ]
    return tracks


def _write_serving_artifacts(args, result, recorder, sampler, report) -> None:
    """Write the --trace / --timeseries / --slo-report artifacts."""
    import pathlib

    from repro import obs
    from repro.obs.costs import cost_flow_events
    from repro.obs.vtrace import (
        device_timeline,
        request_track_events,
        vtrace_jsonl_lines,
    )

    clock_mhz = result.clock_hz / 1e6
    meta = {
        "architecture": result.config.architecture,
        "seed": args.seed,
        "arrival": args.arrival,
        "offered_rps": args.trace_load,
        "slo_ms": result.config.slo_ms,
    }
    if args.trace:
        trace_path = pathlib.Path(args.trace)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        counters = sampler.counter_tracks()
        counters.update(_serving_stall_rate_tracks(result, sampler))
        # Request lifecycle lanes plus cost flow arrows: each arrow
        # binds a request's lane to the device-lane slice it paid for,
        # so an SLO violation drills down to the charged device work.
        extra = request_track_events(recorder.events, clock_mhz=clock_mhz)
        extra.extend(cost_flow_events(recorder.events, clock_mhz=clock_mhz))
        trace_path.write_text(
            obs.chrome_trace_json(
                device_timeline(recorder.events),
                clock_mhz=clock_mhz,
                metadata=meta,
                counters=counters,
                extra_events=extra,
            )
        )
        events_path = trace_path.with_suffix(".events.jsonl")
        events_path.write_text(
            "".join(
                f"{line}\n"
                for line in vtrace_jsonl_lines(recorder.events, metadata=meta)
            )
        )
        print(f"merged trace: {trace_path}  (open in https://ui.perfetto.dev)")
        print(f"event log:    {events_path}")
    if args.timeseries:
        ts_path = pathlib.Path(args.timeseries)
        ts_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "cadence_cycles": sampler.cadence_cycles,
            "clock_mhz": clock_mhz,
            "series": {
                name: {"samples": ts.samples, "dropped": ts.dropped}
                for name, ts in sorted(sampler.series().items())
            },
        }
        ts_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"time series:  {ts_path}")
    if args.slo_report:
        slo_path = pathlib.Path(args.slo_report)
        slo_path.parent.mkdir(parents=True, exist_ok=True)
        slo_path.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"slo report:   {slo_path}")


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.serving import (
        ServingConfig,
        render_slo_dashboard,
        render_sweep,
        sweep_offered_load,
    )

    loads = sorted(float(x) for x in args.loads.split(","))
    if len(loads) < 3:
        print("error: need at least 3 offered loads for a sweep")
        return 2
    config = ServingConfig(
        s=args.seq,
        architecture=args.arch,
        max_batch=args.max_batch,
        kv_budget_bytes=args.kv_budget_bytes,
        slo_ms=args.slo_ms,
    )
    sweep = sweep_offered_load(
        loads,
        num_requests=args.requests,
        arrival_kind=args.arrival,
        config=config,
        seed=args.seed,
    )
    print(render_sweep(sweep))
    if args.json:
        import dataclasses
        import pathlib

        payload = {
            "config": dataclasses.asdict(config),
            "arrival": args.arrival,
            "num_requests": args.requests,
            "seed": args.seed,
            "points": [dataclasses.asdict(p) for p in sweep.points],
            "attribution": sweep.attribution,
        }
        out = pathlib.Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    if args.trace or args.timeseries or args.slo_report:
        # Instrumented re-run of the heaviest offered load: that is
        # where the lifecycle (queueing, preemption, SLO misses) is.
        args.trace_load = loads[-1]
        result, recorder, sampler, report = _instrumented_serving_run(
            config,
            args.arrival,
            loads[-1],
            args.requests,
            args.seed,
            args.sample_cycles,
            args.slo_target,
        )
        print()
        print(f"instrumented run at {loads[-1]:g} req/s:")
        print(render_slo_dashboard(report))
        _write_serving_artifacts(args, result, recorder, sampler, report)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.serving import ServingConfig, render_slo_dashboard

    config = ServingConfig(
        s=args.seq,
        architecture=args.arch,
        max_batch=args.max_batch,
        kv_budget_bytes=args.kv_budget_bytes,
        slo_ms=args.slo_ms,
    )
    result, recorder, _, report = _instrumented_serving_run(
        config,
        args.arrival,
        args.load,
        args.requests,
        args.seed,
        args.sample_cycles,
        args.slo_target,
    )
    if args.json:
        payload = report.as_dict()
        payload["offered_rps"] = args.load
        payload["event_counts"] = recorder.counts()
        payload["device_end_cycles"] = result.device_end_cycles
        print(json.dumps(payload, indent=2))
        return 0 if not report.alerts else 1
    print(
        f"serving SLO dashboard: {args.arrival} arrivals at {args.load:g} "
        f"req/s, {args.requests} requests, arch {config.architecture}, "
        f"batch<={config.max_batch}"
    )
    print(render_slo_dashboard(report))
    counts = recorder.counts()
    print(
        "events: "
        + ", ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))
    )
    return 0 if not report.alerts else 1


def _cmd_costs(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.obs.vtrace import VTraceRecorder
    from repro.serving import (
        ContinuousBatchingScheduler,
        ServingConfig,
        build_cost_ledger,
        estimate_capacity,
        make_arrival_model,
        render_cost_dashboard,
        synthesize_requests,
    )

    config = ServingConfig(
        s=args.seq,
        architecture=args.arch,
        max_batch=args.max_batch,
        kv_budget_bytes=args.kv_budget_bytes,
        slo_ms=args.slo_ms,
    )
    arrival = make_arrival_model(args.arrival, args.load, seed=args.seed)
    requests = synthesize_requests(
        arrival, args.requests, seed=args.seed, tenant_classes=args.tenants
    )
    recorder = VTraceRecorder()
    result = ContinuousBatchingScheduler(config, vtrace=recorder).run(requests)
    ledger = build_cost_ledger(result, recorder.events)
    capacity = estimate_capacity(ledger, args.target_rps, args.utilization_cap)
    if args.json:
        payload = ledger.as_dict()
        payload["offered_rps"] = args.load
        payload["capacity"] = dataclasses.asdict(capacity)
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"serving cost attribution: {args.arrival} arrivals at "
        f"{args.load:g} req/s, {args.requests} requests across "
        f"{args.tenants} tenant(s), arch {config.architecture}, "
        f"batch<={config.max_batch}"
    )
    print(render_cost_dashboard(ledger, capacity, by_tenant=args.by_tenant))
    return 0


def _diff_live_profile(spec: str, s: int):
    """Resolve an architecture spec to ``(RunProfile, Timeline)``.

    A1/A2/A3 trace the full-pass block program under that architecture;
    A4 is the optimizer's synthesized schedule (``synthesize_a4``)
    traced under A3 — the pass-transformed program, not a different
    fabric.
    """
    from repro.hw.program import trace_program_with_schedule
    from repro.obs.diffprof import profile_run

    lm = LatencyModel()
    overhead = lm.calibration.block_overhead_cycles
    if spec == "A4":
        from repro.hw.dse import synthesize_a4

        program, arch = synthesize_a4(s=s, architecture="A3").program, "A3"
    else:
        program, arch = lm.full_pass_program(s), spec
    timeline, sched = trace_program_with_schedule(program, arch, overhead)
    profile = profile_run(
        program, arch, overhead, label=f"{spec} s={s}",
        timeline=timeline, sched=sched,
    )
    return profile, timeline


def _cmd_diff_serve(args: argparse.Namespace) -> int:
    from repro.obs.diffprof import diff_tenant_costs
    from repro.serving import (
        ServingConfig,
        build_cost_ledger,
        diff_sweeps,
        render_sweep_delta,
        sweep_offered_load,
    )

    loads = sorted(float(x) for x in args.loads.split(","))
    if len(loads) < 3:
        print("error: need at least 3 offered loads for a sweep")
        return 2
    base_config = ServingConfig(
        s=args.seq, architecture=args.arch, max_batch=args.max_batch,
        slo_ms=args.slo_ms,
    )
    cand_config = ServingConfig(
        s=args.seq,
        architecture=args.cand_arch or args.arch,
        max_batch=args.cand_max_batch or args.max_batch,
        slo_ms=args.slo_ms,
    )
    base_sweep, cand_sweep = (
        sweep_offered_load(
            loads, num_requests=args.requests, arrival_kind=args.arrival,
            config=config, seed=args.seed,
        )
        for config in (base_config, cand_config)
    )
    try:
        delta = diff_sweeps(base_sweep, cand_sweep)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(render_sweep_delta(delta))
    print()

    # SLO attainment and per-tenant cost deltas from an instrumented
    # re-run of each variant at the heaviest offered load — that is
    # where queueing, preemption, and SLO misses actually diverge.
    sides = []
    for config in (base_config, cand_config):
        result, recorder, _, slo_report = _instrumented_serving_run(
            config, args.arrival, loads[-1], args.requests, args.seed,
            args.sample_cycles, args.slo_target,
        )
        sides.append((slo_report, build_cost_ledger(result, recorder.events)))
    (base_slo, base_ledger), (cand_slo, cand_ledger) = sides
    costs = diff_tenant_costs(base_ledger, cand_ledger)
    d_att = cand_slo.attainment - base_slo.attainment
    totals = costs["totals"]
    print(f"instrumented deltas at {loads[-1]:g} req/s (cand - base):")
    print(f"  SLO attainment : {base_slo.attainment:.1%} -> "
          f"{cand_slo.attainment:.1%} ({d_att:+.1%})")
    print(f"  device cycles  : {totals['makespan_cycles']:+,} "
          f"(attributed {totals['attributed_cycles']:+,})")
    print(f"  HBM load bytes : {totals['hbm_load_bytes']:+,}")
    rows = [
        [tenant, f"{t['requests']:+d}", f"{t['good']:+d}",
         f"{t['attributed_cycles']:+,}", f"{t['hbm_load_bytes']:+,}"]
        for tenant, t in sorted(costs["tenants"].items())
    ]
    if rows:
        print(format_table(
            ["tenant", "Δreq", "Δgood", "Δcycles", "Δhbm bytes"], rows
        ))
    payload = {
        "sweep": delta.as_dict(),
        "heaviest_load_rps": loads[-1],
        "slo_attainment": {
            "base": base_slo.attainment,
            "cand": cand_slo.attainment,
            "delta": d_att,
        },
        "costs": costs,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    if args.out:
        import pathlib

        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import pathlib

    from repro import obs
    from repro.obs.diffprof import (
        delta_counter_tracks,
        diff_profiles,
        load_profile,
        render_waterfall,
    )

    if args.serve:
        return _cmd_diff_serve(args)
    if args.snapshots:
        from repro.bench import (
            diff_snapshots,
            load_snapshot,
            render_snapshot_delta,
        )

        try:
            delta = diff_snapshots(
                load_snapshot(args.snapshots[0]),
                load_snapshot(args.snapshots[1]),
            )
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
        if args.json:
            print(json.dumps(delta.as_dict(), indent=2))
        else:
            print(render_snapshot_delta(delta, top=args.top))
        if args.out:
            out = pathlib.Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(delta.as_dict(), indent=2) + "\n")
            print(f"wrote {out}")
        return 0

    timelines = None
    if args.profiles:
        try:
            base_prof = load_profile(args.profiles[0])
            cand_prof = load_profile(args.profiles[1])
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
    else:
        base_prof, base_tl = _diff_live_profile(args.base, args.seq)
        cand_prof, cand_tl = _diff_live_profile(args.cand, args.seq)
        timelines = (base_tl, cand_tl)
    waterfall = diff_profiles(base_prof, cand_prof)
    if args.json:
        print(json.dumps(waterfall.as_dict(), indent=2))
    else:
        print(render_waterfall(waterfall, top=args.top))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(waterfall.as_dict(), indent=2) + "\n")
        print(f"wrote {out}")
    if args.trace:
        if timelines is None:
            print("error: --trace needs a live diff (--base/--cand); "
                  "saved profiles carry no timeline")
            return 2
        trace_path = pathlib.Path(args.trace)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(
            obs.chrome_trace_json(
                clock_mhz=HardwareConfig().clock_mhz,
                metadata={
                    "base": base_prof.label,
                    "cand": cand_prof.label,
                    "makespan_delta_cycles": waterfall.makespan_delta,
                },
                counters=delta_counter_tracks(*timelines),
            )
        )
        print(f"delta trace: {trace_path}  (open in https://ui.perfetto.dev)")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import build_attribution_report

    report = build_attribution_report(s=args.seq, architecture=args.arch)
    print(report.format())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.hw.verification import verify_equivalence

    results = verify_equivalence()
    rows = [
        [
            r.case.name,
            f"{r.max_abs_error:.2e}",
            f"{r.max_rel_error:.2e}",
            "PASS" if r.passed else "FAIL",
        ]
        for r in results
    ]
    print(format_table(["case", "max |err|", "max rel err", "status"], rows))
    failed = [r for r in results if not r.passed]
    print(f"{len(results) - len(failed)}/{len(results)} cases passed")
    del args
    return 1 if failed else 0


def _cmd_utilization(args: argparse.Namespace) -> int:
    from repro.analysis.bandwidth import architecture_utilization_table

    rows = []
    for r in architecture_utilization_table(s=args.seq):
        rows.append([
            r.architecture.value,
            f"{r.compute_busy_fraction:.0%}",
            f"{r.compute_stall_fraction:.0%}",
            f"{r.effective_load_gbps:.2f}",
            f"{r.sustained_gflops:.1f}",
        ])
    print(format_table(
        ["arch", "compute busy", "compute stall", "load GB/s", "GFLOPs/s"],
        rows,
    ))
    return 0


def _cmd_inventory(args: argparse.Namespace) -> int:
    del args
    rows = [[r.name, r.count, r.dims] for r in weight_inventory()]
    print(format_table(["matrix", "count", "dims"], rows))
    return 0


def _cmd_program(args: argparse.Namespace) -> int:
    from repro.hw.visualize import render_program_gantt

    lm = LatencyModel()
    program = lm.full_pass_program(args.seq)
    shown = list(program.ops[: args.ops])
    rows = [
        [
            op.op_id,
            op.block,
            op.kind.value,
            "+".join(op.engines),
            op.cycles,
            op.label,
        ]
        for op in shown
    ]
    print(f"block program: {program.num_ops} ops, "
          f"{len(program.blocks)} blocks (s={args.seq})")
    print(format_table(["op", "block", "kind", "engines", "cycles", "label"], rows))
    if program.num_ops > len(shown):
        print(f"... {program.num_ops - len(shown)} more ops "
              f"(raise --ops to see them)")
    print()
    print(f"per-engine Gantt under {args.arch}:")
    print(render_program_gantt(program, args.arch, width=args.width))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    import json as _json

    from repro.hw.introspect import (
        classify_stalls,
        default_watchpoints,
        render_stall_dashboard,
        run_watchpoints,
    )
    from repro.hw.program import trace_program_with_schedule
    from repro.hw.visualize import render_program_gantt

    lm = LatencyModel()
    program = lm.full_pass_program(args.seq)
    overhead = lm.calibration.block_overhead_cycles
    timeline, sched = trace_program_with_schedule(program, args.arch, overhead)
    report = classify_stalls(
        program, args.arch, overhead, timeline=timeline, sched=sched
    )
    report.verify_conservation()
    hits = run_watchpoints(
        timeline, default_watchpoints(timeline, idle_fraction=args.watch_idle)
    )
    crossover = lm.crossover_sequence_length()
    if args.json:
        payload = report.as_dict()
        payload["s"] = args.seq
        payload["crossover_s"] = crossover
        payload["watchpoint_hits"] = [h.as_dict() for h in hits]
        print(_json.dumps(payload, indent=2))
        return 0
    print(render_stall_dashboard(report, hits, width=max(args.width // 3, 10)))
    print()
    side = "compute" if args.seq >= crossover else "load"
    print(f"Fig 5.2 context: encoder compute overtakes its weight load at "
          f"s = {crossover} (paper: s > 18); at s={args.seq} the encoder is "
          f"{side}-bound under {args.arch}.")
    if args.gantt:
        print()
        print(f"stall-annotated Gantt ({args.arch}):")
        print(render_program_gantt(
            program, args.arch, width=args.width, annotate_stalls=True
        ))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    import json as _json

    from repro.hw.dse import synthesize_a4

    result = synthesize_a4(s=args.seq, architecture=args.arch)
    payload = result.as_dict()
    if args.out:
        with open(args.out, "w") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(_json.dumps(payload, indent=2))
        return 0
    print(
        f"A4 synthesis over {args.arch} at s={args.seq} "
        f"({result.candidates_tried} candidate pipelines):"
    )
    print(f"  winning pipeline : {' -> '.join(result.pipeline.names)}")
    print(f"  baseline cycles  : {result.baseline_cycles:>12,}")
    print(f"  optimized cycles : {result.optimized_cycles:>12,}")
    print(f"  saved            : {result.cycles_saved:>12,} "
          f"({result.improvement_pct:.2f}%)")
    print()
    rows = [
        [
            p.name,
            len(p.actions),
            f"{p.cycles_before:,}",
            f"{p.cycles_after:,}",
            f"{p.cycles_before - p.cycles_after:,}",
        ]
        for p in result.report.passes
    ]
    print(format_table(
        ["pass", "actions", "cycles before", "cycles after", "saved"], rows
    ))
    print()
    print("PSA stall attribution (cycles):")
    causes = sorted(
        set(result.psa_stalls_before) | set(result.psa_stalls_after)
    )
    rows = [
        [
            cause,
            f"{int(result.psa_stalls_before.get(cause, 0)):,}",
            f"{int(result.psa_stalls_after.get(cause, 0)):,}",
        ]
        for cause in causes
    ]
    print(format_table(["cause", "A3", "A4"], rows))
    if args.out:
        print(f"\nreport written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asr",
        description="Transformer-ASR FPGA accelerator simulator (RAW 2023 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("latency", help="Table 5.1 latency sweep")
    p.add_argument("--arch", nargs="+", default=["A1", "A2", "A3"],
                   choices=["A1", "A2", "A3"])
    p.add_argument("--seq", nargs="+", type=int, default=[4, 8, 16, 32])
    p.set_defaults(func=_cmd_latency)

    p = sub.add_parser("crossover", help="Fig 5.2 load/compute crossover")
    p.set_defaults(func=_cmd_crossover)

    p = sub.add_parser("resources", help="Table 5.2 resource estimate")
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--psa-rows", type=int, default=2)
    p.set_defaults(func=_cmd_resources)

    p = sub.add_parser("dse", help="Table 5.3 head-parallelism DSE")
    p.add_argument("--seq", type=int, default=32)
    p.set_defaults(func=_cmd_dse)

    p = sub.add_parser("precision", help="fixed-precision sweep (§6.2)")
    p.set_defaults(func=_cmd_precision)

    p = sub.add_parser("transcribe", help="E2E demo on a synthetic utterance")
    p.add_argument("--words", type=int, default=3)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--beam", type=int, default=1)
    p.add_argument("--json", action="store_true",
                   help="emit the result breakdown + metrics as JSON")
    p.set_defaults(func=_cmd_transcribe)

    p = sub.add_parser(
        "profile",
        help="profiled E2E run: Chrome trace (Perfetto) + metric dumps",
    )
    p.add_argument("--out", default="profile_out",
                   help="output directory for trace.json / metrics.prom / "
                        "events.jsonl")
    p.add_argument("--words", type=int, default=3)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--beam", type=int, default=1)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "metrics", help="Prometheus exposition text of a profiled E2E run"
    )
    p.add_argument("--words", type=int, default=3)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--beam", type=int, default=1)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "bench",
        help="performance-trajectory harness: snapshot, gate, attribute",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser(
        "run", help="run the scenario suite and write a BENCH_<n>.json snapshot"
    )
    b.add_argument("--out", default="benchmarks/snapshots",
                   help="directory receiving the next BENCH_<n>.json")
    b.add_argument("--repeats", type=int, default=3,
                   help="wall-clock samples per scenario (median-of-k)")
    b.add_argument("--quick", action="store_true",
                   help="trimmed suite, one repeat (smoke runs / tests)")
    b.set_defaults(func=_cmd_bench_run)

    b = bench_sub.add_parser(
        "compare", help="diff a snapshot against a baseline (exit 1 on failure)"
    )
    b.add_argument("baseline", help="committed baseline snapshot path")
    b.add_argument("current",
                   help="fresh snapshot path, or a directory holding "
                        "BENCH_<n>.json files (highest n wins)")
    b.add_argument("--wall-tol", type=float, default=0.25,
                   help="fractional wall-clock drift considered meaningful")
    b.add_argument("--fail-on-wall", action="store_true",
                   help="escalate wall-clock regressions to failures")
    b.add_argument("--artifact-hint", default=None, metavar="PATH",
                   help="on failure, point the reader at the differential "
                        "waterfall artifact explaining the drift (CI wires "
                        "this to the uploaded diff JSON)")
    b.set_defaults(func=_cmd_bench_compare)

    b = bench_sub.add_parser(
        "report", help="bottleneck attribution: block bounds, crossover, roofline"
    )
    b.add_argument("--seq", type=int, default=32)
    b.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    b.set_defaults(func=_cmd_bench_report)

    p = sub.add_parser(
        "diff",
        help="differential profiler: conservation-checked cycle-delta "
             "waterfall between two runs (live A1-A4, saved profiles, "
             "bench snapshots, or serving variants)",
    )
    p.add_argument("--base", default="A3", choices=["A1", "A2", "A3", "A4"],
                   help="baseline run for a live diff (A4 = the "
                        "optimizer's synthesized schedule over A3)")
    p.add_argument("--cand", default="A4", choices=["A1", "A2", "A3", "A4"],
                   help="candidate run for a live diff")
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--top", type=int, default=8,
                   help="leaves/rows shown per waterfall table")
    p.add_argument("--snapshots", nargs=2, metavar=("BASE", "CURRENT"),
                   default=None,
                   help="diff two BENCH_<n>.json snapshots instead "
                        "(waterfalls where both embed run profiles)")
    p.add_argument("--profiles", nargs=2, metavar=("BASE", "CAND"),
                   default=None,
                   help="diff two saved runprofile.json artifacts (or "
                        "`repro-asr profile` output directories)")
    p.add_argument("--serve", action="store_true",
                   help="diff two serving variants: sweep deltas, knee "
                        "movement, SLO attainment and per-tenant costs")
    p.add_argument("--json", action="store_true",
                   help="emit the delta as JSON instead of tables")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the delta JSON to this path (the CI "
                        "waterfall artifact)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write Perfetto delta counter tracks "
                        "(candidate-minus-base utilization per engine; "
                        "live diffs only)")
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"],
                   help="base serving architecture (--serve)")
    p.add_argument("--cand-arch", default=None, choices=["A1", "A2", "A3"],
                   help="candidate serving architecture (--serve; "
                        "defaults to --arch)")
    p.add_argument("--max-batch", type=int, default=4)
    p.add_argument("--cand-max-batch", type=int, default=None,
                   help="candidate decode-batch width (--serve; defaults "
                        "to --max-batch)")
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "bursty", "diurnal"])
    p.add_argument("--loads", default="0.5,2,8",
                   help="comma-separated offered loads for --serve (>=3)")
    p.add_argument("--requests", type=int, default=16)
    p.add_argument("--slo-ms", type=float, default=1500.0)
    p.add_argument("--slo-target", type=float, default=0.95)
    p.add_argument("--sample-cycles", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=11)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "serve-sim",
        help="multi-tenant serving simulator: latency vs offered load",
    )
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "bursty", "diurnal"])
    p.add_argument("--loads", default="0.5,2,8",
                   help="comma-separated offered loads, requests/s (>=3)")
    p.add_argument("--requests", type=int, default=16,
                   help="requests simulated per load level")
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.add_argument("--max-batch", type=int, default=4,
                   help="decode-iteration width (continuous batch size)")
    p.add_argument("--kv-budget-bytes", type=int, default=None,
                   help="K/V BRAM budget; default fits max-batch full caches")
    p.add_argument("--slo-ms", type=float, default=1500.0,
                   help="latency SLO for goodput accounting (virtual ms)")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the sweep + attribution as JSON")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a merged Perfetto trace (device lanes + "
                        "per-request lifecycle tracks) of an instrumented "
                        "re-run at the highest load, plus a JSONL event "
                        "log next to it")
    p.add_argument("--timeseries", default=None, metavar="PATH",
                   help="write the sampled virtual-time series "
                        "(batch, queue depth, KV bytes, cycle accounts) "
                        "as JSON")
    p.add_argument("--slo-report", default=None, metavar="PATH",
                   help="write the SLO report (attainment, burn rates, "
                        "per-violation attribution) as JSON")
    p.add_argument("--slo-target", type=float, default=0.95,
                   help="SLO attainment target in (0,1) for the "
                        "instrumented run")
    p.add_argument("--sample-cycles", type=int, default=100_000,
                   help="virtual-time sampler cadence, fabric cycles")
    p.set_defaults(func=_cmd_serve_sim)

    p = sub.add_parser(
        "slo",
        help="serving SLO dashboard: attainment, error budget, burn-rate "
             "alerts, per-violation phase + stall-cause attribution",
    )
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "bursty", "diurnal"])
    p.add_argument("--load", type=float, default=8.0,
                   help="offered load, requests/s")
    p.add_argument("--requests", type=int, default=16)
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.add_argument("--max-batch", type=int, default=4)
    p.add_argument("--kv-budget-bytes", type=int, default=None)
    p.add_argument("--slo-ms", type=float, default=1500.0,
                   help="latency SLO (virtual ms)")
    p.add_argument("--slo-target", type=float, default=0.95,
                   help="SLO attainment target in (0,1)")
    p.add_argument("--sample-cycles", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--json", action="store_true",
                   help="emit the SLO report + event counts as JSON")
    p.set_defaults(func=_cmd_slo)

    p = sub.add_parser(
        "costs",
        help="per-request/per-tenant cost attribution: exact cycle "
             "shares, HBM bytes, KV residency, fairness readouts, and "
             "the capacity extrapolation (cards for a target load)",
    )
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "bursty", "diurnal"])
    p.add_argument("--load", type=float, default=8.0,
                   help="offered load, requests/s")
    p.add_argument("--requests", type=int, default=16)
    p.add_argument("--tenants", type=int, default=2,
                   help="tenant classes in the synthesized mix")
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.add_argument("--max-batch", type=int, default=4)
    p.add_argument("--kv-budget-bytes", type=int, default=None)
    p.add_argument("--slo-ms", type=float, default=1500.0,
                   help="latency SLO for goodput accounting (virtual ms)")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--target-rps", type=float, default=100.0,
                   help="target offered load for the capacity "
                        "extrapolation (utterances/s fleet-wide)")
    p.add_argument("--utilization-cap", type=float, default=0.7,
                   help="per-card utilization headroom in (0,1]")
    p.add_argument("--by-tenant", action="store_true",
                   help="include the per-tenant breakdown and fairness "
                        "readouts in the dashboard")
    p.add_argument("--json", action="store_true",
                   help="emit the full ledger (per-request, per-tenant, "
                        "fairness, capacity) as JSON")
    p.set_defaults(func=_cmd_costs)

    p = sub.add_parser("inventory", help="Table 4.1 weight inventory")
    p.set_defaults(func=_cmd_inventory)

    p = sub.add_parser(
        "program", help="lowered block-program op list + per-engine Gantt"
    )
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.add_argument("--ops", type=int, default=24,
                   help="number of ops to list (the Gantt always covers all)")
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(func=_cmd_program)

    p = sub.add_parser(
        "inspect",
        help="ILA-style stall dashboard: utilization bars, stall causes, "
             "watchpoint hits",
    )
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--watch-idle", type=float, default=0.05,
                   help="idle watchpoint threshold, as a fraction of the "
                        "makespan")
    p.add_argument("--gantt", action="store_true",
                   help="append the stall-annotated per-engine Gantt")
    p.add_argument("--json", action="store_true",
                   help="emit the stall report + watchpoint hits as JSON")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser(
        "optimize",
        help="search the pass pipeline space and synthesize the A4 "
             "schedule (exact cycles + stall attribution)",
    )
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--arch", default="A3", choices=["A1", "A2", "A3"])
    p.add_argument("--json", action="store_true",
                   help="emit the full A4 report as JSON")
    p.add_argument("--out", default=None,
                   help="also write the JSON report to this path (the CI "
                        "pass-report artifact)")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("verify", help="accelerator vs golden-model battery")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("utilization", help="engine utilization per architecture")
    p.add_argument("--seq", type=int, default=32)
    p.set_defaults(func=_cmd_utilization)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
