"""Host-side process flow (paper Section 2.2.7).

The paper's host orchestrates the accelerator through OpenCL: create a
context for the card, build the program (one kernel per SLR), allocate
device buffers, DMA the inputs over PCIe, enqueue kernels with event
dependencies, and read results back.  This package models that runtime
— in-order command queues, events, device-memory accounting — and
re-expresses the end-to-end inference as an OpenCL command graph whose
makespan agrees with the cycle model's latency report.
"""

from repro.host.flow import HostFlowReport, run_inference_flow
from repro.host.opencl import (
    Buffer,
    CommandQueue,
    Context,
    Device,
    Event,
    Kernel,
    Program,
)

__all__ = [
    "HostFlowReport",
    "run_inference_flow",
    "Buffer",
    "CommandQueue",
    "Context",
    "Device",
    "Event",
    "Kernel",
    "Program",
]
