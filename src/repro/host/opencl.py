"""A simulated OpenCL-style runtime: devices, contexts, buffers,
in-order command queues and events.

Times are in seconds of simulated wall-clock.  Transfers are priced by
the PCIe model; kernel durations are supplied by the caller (the cycle
model).  Command queues are in-order (the OpenCL default the paper's
host code uses); dependencies across queues go through event wait
lists, exactly like ``clEnqueueNDRangeKernel`` with ``event_wait_list``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.config import HardwareConfig
from repro.hw.memory import PcieModel
from repro.hw.trace import Timeline

#: Alveo U50 device global memory (8 GB HBM2).
DEFAULT_GLOBAL_MEMORY_BYTES = 8 * 1024**3


@dataclass(frozen=True)
class Device:
    """One accelerator card."""

    name: str = "xilinx_u50_gen3x16_xdma"
    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    global_memory_bytes: int = DEFAULT_GLOBAL_MEMORY_BYTES

    def __post_init__(self) -> None:
        if self.global_memory_bytes <= 0:
            raise ValueError("global_memory_bytes must be positive")


@dataclass(frozen=True)
class Event:
    """Completion handle of one enqueued command."""

    event_id: int
    label: str
    queue_name: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("event ends before it starts")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Context:
    """Owns device memory and the event clock (one device)."""

    def __init__(self, device: Device | None = None) -> None:
        self.device = device or Device()
        self._allocated = 0
        self._event_counter = itertools.count()
        self._pcie = PcieModel(self.device.hardware)
        self.timeline = Timeline()

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def alloc(self, size: int, name: str) -> "Buffer":
        if size <= 0:
            raise ValueError("buffer size must be positive")
        if self._allocated + size > self.device.global_memory_bytes:
            raise MemoryError(
                f"device memory exhausted allocating '{name}': "
                f"{self._allocated + size} > {self.device.global_memory_bytes}"
            )
        self._allocated += size
        return Buffer(context=self, name=name, size=size)

    def free(self, buffer: "Buffer") -> None:
        if buffer.released:
            raise ValueError(f"buffer '{buffer.name}' already released")
        self._allocated -= buffer.size
        buffer.released = True

    def transfer_seconds(self, num_bytes: int) -> float:
        return self._pcie.transfer_seconds(num_bytes)

    def next_event_id(self) -> int:
        return next(self._event_counter)


@dataclass
class Buffer:
    """A device global-memory allocation."""

    context: Context
    name: str
    size: int
    released: bool = False


@dataclass(frozen=True)
class Program:
    """A compiled xclbin: kernels pinned to SLRs."""

    kernels: tuple["Kernel", ...]

    def kernel(self, name: str) -> "Kernel":
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"no kernel named '{name}'")


@dataclass(frozen=True)
class Kernel:
    """One compute kernel, placed on one SLR."""

    name: str
    slr: int

    def __post_init__(self) -> None:
        if self.slr < 0:
            raise ValueError("slr must be non-negative")


class CommandQueue:
    """An in-order command queue bound to a context."""

    def __init__(self, context: Context, name: str) -> None:
        self.context = context
        self.name = name
        self._ready_s = 0.0
        self.events: list[Event] = []

    def _enqueue(
        self,
        label: str,
        duration_s: float,
        wait_for: list[Event] | None,
        kind: str,
    ) -> Event:
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        start = self._ready_s
        for ev in wait_for or ():
            start = max(start, ev.end_s)
        end = start + duration_s
        event = Event(
            event_id=self.context.next_event_id(),
            label=label,
            queue_name=self.name,
            start_s=start,
            end_s=end,
        )
        self._ready_s = end
        self.events.append(event)
        self.context.timeline.add(
            self.name, label, start, end, kind=kind
        )
        return event

    def enqueue_marker(
        self,
        label: str,
        duration_s: float,
        wait_for: list[Event] | None = None,
    ) -> Event:
        """A host-side operation of known duration (setup, build)."""
        return self._enqueue(label, duration_s, wait_for, kind="overhead")

    def enqueue_write_buffer(
        self,
        buffer: Buffer,
        num_bytes: int | None = None,
        wait_for: list[Event] | None = None,
    ) -> Event:
        """DMA host -> device over PCIe."""
        self._check_buffer(buffer)
        size = buffer.size if num_bytes is None else num_bytes
        if not 0 < size <= buffer.size:
            raise ValueError("write size must be in (0, buffer.size]")
        return self._enqueue(
            f"write:{buffer.name}",
            self.context.transfer_seconds(size),
            wait_for,
            kind="load",
        )

    def enqueue_read_buffer(
        self,
        buffer: Buffer,
        num_bytes: int | None = None,
        wait_for: list[Event] | None = None,
    ) -> Event:
        """DMA device -> host over PCIe."""
        self._check_buffer(buffer)
        size = buffer.size if num_bytes is None else num_bytes
        if not 0 < size <= buffer.size:
            raise ValueError("read size must be in (0, buffer.size]")
        return self._enqueue(
            f"read:{buffer.name}",
            self.context.transfer_seconds(size),
            wait_for,
            kind="store",
        )

    def enqueue_kernel(
        self,
        kernel: Kernel,
        duration_cycles: float,
        wait_for: list[Event] | None = None,
    ) -> Event:
        """Launch a kernel whose duration the cycle model supplies."""
        if duration_cycles < 0:
            raise ValueError("duration_cycles must be non-negative")
        seconds = duration_cycles / (
            self.context.device.hardware.clock_mhz * 1e6
        )
        return self._enqueue(
            f"kernel:{kernel.name}", seconds, wait_for, kind="compute"
        )

    def finish(self) -> float:
        """Block until the queue drains; returns the drain time."""
        return self._ready_s

    def _check_buffer(self, buffer: Buffer) -> None:
        if buffer.context is not self.context:
            raise ValueError("buffer belongs to a different context")
        if buffer.released:
            raise ValueError(f"buffer '{buffer.name}' was released")
