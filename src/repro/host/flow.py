"""The Section 2.2.7 host process flow as an OpenCL command graph.

Stages, exactly as the paper lists them:

1. initialize the platform, create the context, build the program
   (one kernel per SLR);
2. allocate device buffers and DMA the model weights into HBM once;
3. per inference: DMA the input features, launch the kernels (whose
   duration is the cycle model's scheduled load/compute chain), DMA
   the result back — with the next input's transfer overlapping the
   current kernel on a second queue.

The per-inference makespan must agree with
:class:`repro.hw.controller.LatencyReport` — the host model and the
cycle model are two views of the same machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.scheduler import Architecture
from repro.hw.trace import Timeline
from repro.model.flops import weight_bytes
from repro.host.opencl import CommandQueue, Context, Device, Kernel, Program

#: Modeled one-time host overheads (seconds): OpenCL platform/context
#: initialization and xclbin download/program build.
CONTEXT_SETUP_S = 0.050
PROGRAM_BUILD_S = 0.400


@dataclass(frozen=True)
class HostFlowReport:
    """Timing account of the full host flow."""

    setup_s: float
    weight_upload_s: float
    #: Per-inference spans [(start, end)] in seconds after setup.
    inference_spans: tuple[tuple[float, float], ...]
    timeline: Timeline
    allocated_bytes: int

    @property
    def num_inferences(self) -> int:
        return len(self.inference_spans)

    @property
    def first_inference_s(self) -> float:
        start, end = self.inference_spans[0]
        return end - start

    @property
    def steady_spacing_s(self) -> float:
        """Spacing between consecutive inference completions."""
        if self.num_inferences < 2:
            raise ValueError("need >= 2 inferences for a spacing")
        ends = [end for _, end in self.inference_spans]
        return (ends[-1] - ends[0]) / (len(ends) - 1)

    @property
    def total_s(self) -> float:
        return self.timeline.makespan


def run_inference_flow(
    latency_model: LatencyModel | None = None,
    s: int = 32,
    architecture: Architecture | str = Architecture.A3,
    num_inferences: int = 1,
    device: Device | None = None,
) -> HostFlowReport:
    """Execute the host flow against the simulated runtime."""
    if s <= 0:
        raise ValueError("s must be positive")
    if num_inferences < 1:
        raise ValueError("num_inferences must be >= 1")
    lm = latency_model or LatencyModel()
    model: ModelConfig = lm.model
    device = device or Device(hardware=lm.hardware)
    context = Context(device)

    # --- stage 1: platform / context / program.
    setup_queue = CommandQueue(context, "host")
    setup_queue.enqueue_marker("create_context", CONTEXT_SETUP_S)
    setup_queue.enqueue_marker("build_program", PROGRAM_BUILD_S)
    program = Program(
        kernels=tuple(
            Kernel(f"transformer_slr{i}", slr=i)
            for i in range(device.hardware.num_slrs)
        )
    )

    # --- stage 2: buffers + one-time weight upload.
    bpe = device.hardware.bytes_per_element
    weights = context.alloc(weight_bytes(model, bpe), "weights")
    io_bytes = s * model.d_model * bpe
    inputs = [
        context.alloc(io_bytes, f"input{i}") for i in range(num_inferences)
    ]
    outputs = [
        context.alloc(io_bytes, f"output{i}") for i in range(num_inferences)
    ]
    # Separate host->device and device->host DMA queues (PCIe is full
    # duplex) so the next input's upload overlaps the current kernel.
    dma_in = CommandQueue(context, "dma_h2d")
    dma_out = CommandQueue(context, "dma_d2h")
    compute = CommandQueue(context, "compute")
    setup_done = setup_queue.events[-1]
    weights_ev = dma_in.enqueue_write_buffer(weights, wait_for=[setup_done])

    # --- stage 3: inferences, input DMA overlapping the prior kernel.
    report = lm.latency_report(s, architecture)
    kernel = program.kernel("transformer_slr0")
    spans = []
    prev_kernel = None
    for i in range(num_inferences):
        deps = [weights_ev]
        write_ev = dma_in.enqueue_write_buffer(inputs[i], wait_for=deps)
        kdeps = [write_ev] + ([prev_kernel] if prev_kernel else [])
        kernel_ev = compute.enqueue_kernel(
            kernel, report.schedule_cycles, wait_for=kdeps
        )
        read_ev = dma_out.enqueue_read_buffer(outputs[i], wait_for=[kernel_ev])
        spans.append((write_ev.start_s, read_ev.end_s))
        prev_kernel = kernel_ev

    dma_in.finish()
    dma_out.finish()
    compute.finish()
    return HostFlowReport(
        setup_s=setup_done.end_s,
        weight_upload_s=weights_ev.duration_s,
        inference_spans=tuple(spans),
        timeline=context.timeline,
        allocated_bytes=context.allocated_bytes,
    )
