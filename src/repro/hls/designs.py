"""Algorithm 1 (the partially unrolled systolic array) in the HLS IR.

The paper's Algorithm 1 is a matmul loop nest with the ``i`` loop
partially unrolled (factor 2 in the deployed design) and the ``j`` loop
fully unrolled over the 64 array columns, pipelined along the shared
``k`` dimension with the operand/accumulator arrays partitioned so the
pipeline achieves II = 1.  ``matmul_nest`` builds exactly that design
point; ``psa_design_report`` sweeps the row unroll to recover the
"~16x latency for the resource savings" trade-off of Section 4.4 and
shows why ARRAY_PARTITION is load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.ir import Array, Loop, Op, Partition, Region
from repro.hls.schedule import ScheduleReport, schedule_region
from repro.hw.systolic import SystolicArray, ceil_div

#: fp32 MAC: one DSP48 multiplier + LUT-fabric accumulate (matching the
#: fitted per-PE costs of repro.hw.resources).
MAC_OP_DSP = 1.0
MAC_OP_FF = 880
MAC_OP_LUT = 640
#: fp32 multiply-add pipeline depth.
MAC_LATENCY = 8


def matmul_nest(
    l: int,
    m: int,
    n: int,
    row_unroll: int = 2,
    col_unroll: int = 64,
    partitioned: bool = True,
) -> Region:
    """Algorithm 1 as an HLS region for an (l x m) @ (m x n) product.

    The outer loop walks the ``ceil(l/R) * ceil(n/C)`` output tiles;
    the inner ``k`` loop streams the shared dimension (plus the systolic
    skew fill of R + C) with a PIPELINE pragma; the MAC grid is the
    spatially replicated body.  ``partitioned=False`` drops the
    ARRAY_PARTITION pragmas, exposing the port-pressure trap.
    """
    if min(l, m, n) <= 0:
        raise ValueError("matrix dims must be positive")
    if row_unroll < 1 or col_unroll < 1:
        raise ValueError("unroll factors must be >= 1")
    grid = row_unroll * col_unroll
    style = Partition.COMPLETE if partitioned else Partition.NONE
    factor = 1
    arrays = (
        Array("a_regs", depth=max(grid, 2), partition=style, factor=factor),
        Array("b_regs", depth=max(grid, 2), partition=style, factor=factor),
        Array("c_accum", depth=max(grid, 2), partition=style, factor=factor),
    )
    mac = Op(
        "mac",
        latency=MAC_LATENCY,
        dsp=MAC_OP_DSP,
        ff=MAC_OP_FF,
        lut=MAC_OP_LUT,
        reads=("a_regs", "b_regs", "c_accum"),
        writes=("c_accum",),
        copies=grid,
    )
    k_loop = Loop(
        name="k_stream",
        trip=m + row_unroll + col_unroll,  # stream + skew fill/drain
        body_ops=(mac,),
        pipeline_ii=1,
    )
    tiles = ceil_div(l, row_unroll) * ceil_div(n, col_unroll)
    tile_loop = Loop(name="output_tiles", trip=tiles, children=(k_loop,))
    return Region(
        name=f"psa_{row_unroll}x{col_unroll}", arrays=arrays, loops=(tile_loop,)
    )


@dataclass(frozen=True)
class PsaDesignPoint:
    """One Algorithm-1 unroll choice, scheduled."""

    row_unroll: int
    col_unroll: int
    report: ScheduleReport
    #: The analytic cycle count the rest of the simulator uses.
    analytic_cycles: int

    @property
    def latency(self) -> int:
        return self.report.latency

    @property
    def dsp(self) -> float:
        return self.report.resources.dsp

    @property
    def lut(self) -> int:
        return self.report.resources.lut


def psa_design_report(
    l: int = 32,
    m: int = 64,
    n: int = 64,
    row_options: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    col_unroll: int = 64,
) -> list[PsaDesignPoint]:
    """Schedule Algorithm 1 across row-unroll factors.

    The analytic column comes from :class:`SystolicArray.pass_cycles`;
    the HLS schedule should agree up to the per-tile loop overhead —
    the two models of the same hardware must tell the same story.
    """
    points = []
    for rows in row_options:
        region = matmul_nest(l, m, n, row_unroll=rows, col_unroll=col_unroll)
        report = schedule_region(region)
        analytic = SystolicArray(rows=rows, cols=col_unroll).pass_cycles(l, m, n)
        points.append(
            PsaDesignPoint(
                row_unroll=rows,
                col_unroll=col_unroll,
                report=report,
                analytic_cycles=analytic,
            )
        )
    return points
