"""Loop-nest intermediate representation with HLS pragmas.

A :class:`Region` contains loops executed sequentially (or concurrently
under DATAFLOW); a :class:`Loop` has a trip count, optional PIPELINE /
UNROLL pragmas, child loops and leaf :class:`Op` s; an :class:`Op`
reads/writes :class:`Array` s (whose ARRAY_PARTITION pragma sets the
available memory ports) and carries a latency plus resource cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Partition(str, Enum):
    """ARRAY_PARTITION styles (Section 2.2.6)."""

    NONE = "none"  # one BRAM, two ports
    CYCLIC = "cyclic"
    BLOCK = "block"
    COMPLETE = "complete"  # registers: unlimited ports


@dataclass(frozen=True)
class Array:
    """An on-chip buffer with a banking (partition) pragma."""

    name: str
    depth: int
    partition: Partition = Partition.NONE
    #: Banks produced by a cyclic/block partition.
    factor: int = 1

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ValueError("depth must be positive")
        if self.factor < 1:
            raise ValueError("factor must be >= 1")
        if self.partition in (Partition.NONE,) and self.factor != 1:
            raise ValueError("unpartitioned arrays have factor 1")

    @property
    def ports(self) -> int:
        """Concurrent accesses per cycle the banking supports."""
        if self.partition is Partition.COMPLETE:
            # Fully registered: every element has its own flops, so
            # any number of concurrent accesses is fine.
            return 1 << 30
        # Dual-port BRAM per bank.
        return 2 * self.factor


@dataclass(frozen=True)
class Op:
    """A leaf operation: latency, resources, array accesses.

    ``copies`` models spatial replication (e.g. the rows x cols MAC
    grid of a systolic array): the copies run in parallel, so they
    multiply resources and memory accesses but not the critical path.
    """

    name: str
    latency: int = 1
    dsp: float = 0.0
    ff: int = 0
    lut: int = 0
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    copies: int = 1

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("latency must be >= 1")
        if self.dsp < 0 or self.ff < 0 or self.lut < 0:
            raise ValueError("resources must be non-negative")
        if self.copies < 1:
            raise ValueError("copies must be >= 1")


@dataclass(frozen=True)
class Loop:
    """A counted loop with optional PIPELINE / UNROLL pragmas."""

    name: str
    trip: int
    body_ops: tuple[Op, ...] = ()
    children: tuple["Loop", ...] = ()
    #: PIPELINE pragma: target initiation interval (None = not pipelined).
    pipeline_ii: int | None = None
    #: UNROLL pragma: replication factor (1 = rolled).
    unroll: int = 1

    def __post_init__(self) -> None:
        if self.trip < 1:
            raise ValueError("trip count must be >= 1")
        if self.unroll < 1:
            raise ValueError("unroll factor must be >= 1")
        if self.pipeline_ii is not None and self.pipeline_ii < 1:
            raise ValueError("pipeline II must be >= 1")
        if self.pipeline_ii is not None and self.children:
            # Vitis fully unrolls loops under a pipelined loop; we ask
            # the designer to do that explicitly.
            raise ValueError(
                f"loop '{self.name}': pipelined loops cannot contain "
                "child loops (unroll them first)"
            )
        if not self.body_ops and not self.children:
            raise ValueError(f"loop '{self.name}' has an empty body")


@dataclass(frozen=True)
class Region:
    """A function body: arrays + top-level loops.

    With ``dataflow=True`` the loops run as concurrent processes
    (latency = max); otherwise sequentially (latency = sum).
    """

    name: str
    arrays: tuple[Array, ...] = ()
    loops: tuple[Loop, ...] = ()
    dataflow: bool = False

    def __post_init__(self) -> None:
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise ValueError("array names must be unique")
        if not self.loops:
            raise ValueError(f"region '{self.name}' has no loops")

    def array(self, name: str) -> Array:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"no array named '{name}' in region '{self.name}'")


def flatten_ops(loop: Loop) -> list[tuple[Op, int]]:
    """All (op, executions-per-outer-iteration) pairs under a loop."""
    result = [(op, loop.trip) for op in loop.body_ops]
    for child in loop.children:
        result.extend(
            (op, count * loop.trip) for op, count in flatten_ops(child)
        )
    return result
