"""A miniature Vitis-HLS scheduling model (paper Sections 2.2.5-2.2.6).

The paper's accelerator is written in C++/OpenCL and shaped by HLS
pragmas — PIPELINE, UNROLL, ARRAY_PARTITION, DATAFLOW.  This package
models what the HLS scheduler does with them: a loop-nest IR whose
latency, initiation interval and resource usage are derived from trip
counts, operation latencies, unroll replication and memory-port
contention.  ``repro.hls.designs`` expresses Algorithm 1 (the partially
unrolled systolic array) in the IR and recovers the same cycle/resource
behaviour the rest of the simulator assumes — including the paper's
"~16x latency for a big resource saving" partial-unroll trade-off.
"""

from repro.hls.ir import Array, Loop, Op, Partition, Region
from repro.hls.designs import matmul_nest, psa_design_report
from repro.hls.schedule import ResourceUsage, ScheduleReport, schedule_region

__all__ = [
    "Array",
    "Loop",
    "Op",
    "Partition",
    "Region",
    "matmul_nest",
    "psa_design_report",
    "ResourceUsage",
    "ScheduleReport",
    "schedule_region",
]
