"""The HLS scheduler: derive latency / II / resources from the IR.

Scheduling rules (a faithful simplification of what Vitis HLS reports):

* **Pipelined loop**: ``latency = depth + II_eff * (trip/unroll - 1)``
  where depth is the body's critical path and the achieved II is the
  max of the requested II and every array's port-pressure bound
  ``ceil(accesses_per_iteration / ports)``.
* **Rolled loop**: ``latency = trip/unroll * body_latency`` (+1 cycle
  loop overhead per iteration).
* **UNROLL**: replicates the body resources ``factor`` times and cuts
  the trip count; accesses per cycle multiply, so unrolling without
  partitioning the arrays *worsens* the port bound — the classic HLS
  trap the ARRAY_PARTITION pragma exists to fix.
* **Sequential region**: latencies add; **DATAFLOW region**: the
  processes overlap, latency = max (Section 2.2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.ir import Array, Loop, Op, Region, flatten_ops
from repro.hw.systolic import ceil_div


@dataclass(frozen=True)
class ResourceUsage:
    """Accumulated fabric resources of a scheduled design."""

    dsp: float = 0.0
    ff: int = 0
    lut: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            dsp=self.dsp + other.dsp,
            ff=self.ff + other.ff,
            lut=self.lut + other.lut,
        )

    def scaled(self, factor: int) -> "ResourceUsage":
        return ResourceUsage(
            dsp=self.dsp * factor, ff=self.ff * factor, lut=self.lut * factor
        )


@dataclass(frozen=True)
class ScheduleReport:
    """What the scheduler derived for one loop or region."""

    name: str
    latency: int
    achieved_ii: int | None
    resources: ResourceUsage
    #: Arrays whose port pressure limited the II, with their bound.
    port_bounds: dict[str, int] = field(default_factory=dict)


def _body_resources(loop: Loop) -> ResourceUsage:
    total = ResourceUsage()
    for op in loop.body_ops:
        total = total + ResourceUsage(
            dsp=op.dsp, ff=op.ff, lut=op.lut
        ).scaled(op.copies)
    for child in loop.children:
        total = total + _body_resources(child).scaled(child.unroll)
    return total


def _body_depth(loop: Loop, arrays: dict[str, Array]) -> int:
    """Critical path of one iteration (ops chain sequentially)."""
    depth = sum(op.latency for op in loop.body_ops)
    for child in loop.children:
        depth += _schedule_loop(child, arrays).latency
    return max(depth, 1)


def _port_bound(loop: Loop, arrays: dict[str, Array]) -> dict[str, int]:
    """Per-array II lower bound from memory-port contention.

    Counts accesses issued per pipelined iteration *after* unrolling.
    """
    access_counts: dict[str, int] = {}
    for op, _count in flatten_ops(loop):
        for name in list(op.reads) + list(op.writes):
            access_counts[name] = (
                access_counts.get(name, 0) + loop.unroll * op.copies
            )
    bounds = {}
    for name, accesses in access_counts.items():
        if name not in arrays:
            continue
        ports = arrays[name].ports
        bound = ceil_div(accesses, ports)
        if bound > 1:
            bounds[name] = bound
    return bounds


def _schedule_loop(loop: Loop, arrays: dict[str, Array]) -> ScheduleReport:
    effective_trip = ceil_div(loop.trip, loop.unroll)
    resources = _body_resources(loop).scaled(loop.unroll)

    if loop.pipeline_ii is not None:
        depth = _body_depth(loop, arrays)
        bounds = _port_bound(loop, arrays)
        achieved = max([loop.pipeline_ii] + list(bounds.values()))
        latency = depth + achieved * (effective_trip - 1)
        return ScheduleReport(
            name=loop.name,
            latency=latency,
            achieved_ii=achieved,
            resources=resources,
            port_bounds=bounds,
        )

    # Rolled (or partially unrolled) loop: iterations serialize, one
    # cycle of loop-control overhead each.
    body_latency = _body_depth(loop, arrays)
    latency = effective_trip * (body_latency + 1)
    child_bounds: dict[str, int] = {}
    for child in loop.children:
        for name, bound in _schedule_loop(child, arrays).port_bounds.items():
            child_bounds[name] = max(child_bounds.get(name, 0), bound)
    return ScheduleReport(
        name=loop.name,
        latency=latency,
        achieved_ii=None,
        resources=resources,
        port_bounds=child_bounds,
    )


def schedule_loop(loop: Loop, arrays: tuple[Array, ...] = ()) -> ScheduleReport:
    """Schedule a single loop nest against the given arrays."""
    return _schedule_loop(loop, {a.name: a for a in arrays})


def schedule_region(region: Region) -> ScheduleReport:
    """Schedule a full region (sequential or DATAFLOW)."""
    arrays = {a.name: a for a in region.arrays}
    reports = [_schedule_loop(loop, arrays) for loop in region.loops]
    resources = ResourceUsage()
    for r in reports:
        resources = resources + r.resources
    if region.dataflow:
        latency = max(r.latency for r in reports)
    else:
        latency = sum(r.latency for r in reports)
    port_bounds: dict[str, int] = {}
    for r in reports:
        for name, bound in r.port_bounds.items():
            port_bounds[name] = max(port_bounds.get(name, 0), bound)
    return ScheduleReport(
        name=region.name,
        latency=latency,
        achieved_ii=None,
        resources=resources,
        port_bounds=port_bounds,
    )
