"""Chunked (streaming-style) transcription of long utterances.

The synthesized hardware handles a fixed sequence length (s = 32 in the
paper, ~1.4 s of audio).  LibriSpeech utterances run 1-15 s, so a
real-time deployment processes audio in chunks: the host frontend
windows the waveform, each chunk runs through the accelerator
independently, and the transcripts are concatenated.  This module
implements that host-side chunking and accounts latency per chunk —
the "suitable for real-time applications" claim of the abstract means
exactly that per-chunk latency (~120 ms) stays far below chunk duration
(~1.4 s), i.e. a real-time factor well under 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.asr.pipeline import AsrPipeline, TranscriptionResult
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


@dataclass(frozen=True)
class StreamingResult:
    """Concatenated transcript plus per-chunk accounts."""

    text: str
    chunk_results: tuple[TranscriptionResult, ...]
    audio_seconds: float
    details: dict[str, float] = field(default_factory=dict)

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_results)

    @property
    def total_accelerator_ms(self) -> float:
        return sum(r.accelerator_ms for r in self.chunk_results)

    @property
    def total_e2e_ms(self) -> float:
        return sum(r.e2e_ms for r in self.chunk_results)

    @property
    def real_time_factor(self) -> float:
        """Processing time / audio time; < 1 means real-time capable."""
        if self.audio_seconds <= 0:
            raise ValueError("no audio processed")
        return (self.total_e2e_ms / 1e3) / self.audio_seconds


def dedup_join(
    texts: list[str],
    overlap_fractions: list[float],
) -> tuple[str, int]:
    """Join per-chunk transcripts, trimming words re-recognized from
    re-covered audio.

    ``overlap_fractions[i]`` is the fraction of chunk ``i``'s audio that
    was already covered by its predecessor (0 for the first chunk).  A
    chunk's leading words that exactly repeat the tail of the running
    transcript are dropped, up to the word count its overlap fraction
    can account for — so a genuine repetition in non-overlapping audio
    is never trimmed.  Returns (joined_text, words_trimmed).
    """
    if len(texts) != len(overlap_fractions):
        raise ValueError("texts and overlap_fractions must align")
    joined: list[str] = []
    trimmed = 0
    for text, fraction in zip(texts, overlap_fractions):
        words = text.split()
        if not words:
            continue
        if joined and fraction > 0:
            # The overlap can account for at most this many of the
            # chunk's words (plus one for a word straddling the seam).
            cap = min(len(words), int(math.ceil(fraction * len(words))) + 1)
            drop = 0
            for k in range(min(cap, len(joined)), 0, -1):
                if joined[-k:] == words[:k]:
                    drop = k
                    break
            words = words[drop:]
            trimmed += drop
        joined.extend(words)
    return " ".join(joined), trimmed


class StreamingTranscriber:
    """Chunk a long waveform to fit the fixed-s hardware."""

    def __init__(self, pipeline: AsrPipeline, overlap_s: float = 0.0) -> None:
        if overlap_s < 0:
            raise ValueError("overlap_s must be non-negative")
        self.pipeline = pipeline
        self.overlap_s = overlap_s
        self._sample_rate = pipeline.preprocessor.frontend.config.sample_rate
        self.chunk_samples = self._max_chunk_samples()
        overlap = int(round(overlap_s * self._sample_rate))
        if overlap >= self.chunk_samples:
            raise ValueError("overlap exceeds the chunk size")
        self.hop_samples = self.chunk_samples - overlap

    def _max_chunk_samples(self) -> int:
        """Longest waveform whose feature sequence fits hw_seq_len."""
        prep = self.pipeline.preprocessor
        hw_len = self.pipeline.accelerator.hw_seq_len
        # Invert the frontend+subsampler length arithmetic by search
        # (both are monotone step functions of the sample count).
        lo = 1
        hi = self._sample_rate * 30
        while prep.sequence_length(hi) <= hw_len:
            hi *= 2
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if prep.sequence_length(mid) <= hw_len:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def chunk_spans(self, waveform: np.ndarray) -> list[tuple[int, int]]:
        """Sample spans ``[start, end)`` of the hardware-sized chunks."""
        w = np.asarray(waveform, dtype=np.float64)
        if w.ndim != 1:
            raise ValueError("waveform must be one-dimensional")
        if w.size == 0:
            raise ValueError("waveform is empty")
        if w.size <= self.chunk_samples:
            return [(0, int(w.size))]
        starts: list[int] = []
        start = 0
        while start + self.chunk_samples < w.size:
            starts.append(start)
            start += self.hop_samples
        # Flush the final chunk to the end of the waveform (it overlaps
        # its predecessor rather than dropping a short tail).
        final = w.size - self.chunk_samples
        if not starts or final > starts[-1]:
            starts.append(final)
        return [(s0, s0 + self.chunk_samples) for s0 in starts]

    def chunk(self, waveform: np.ndarray) -> list[np.ndarray]:
        """Split a waveform into hardware-sized chunks."""
        w = np.asarray(waveform, dtype=np.float64)
        return [w[s0:s1] for s0, s1 in self.chunk_spans(w)]

    def transcribe(self, waveform: np.ndarray) -> StreamingResult:
        """Transcribe a waveform of arbitrary length chunk by chunk."""
        w = np.asarray(waveform, dtype=np.float64)
        spans = self.chunk_spans(w)
        chunks = [w[s0:s1] for s0, s1 in spans]
        if not chunks:
            raise ValueError("waveform too short for even one chunk")
        with obs_spans.tracer().span(
            "asr.streaming.transcribe", chunks=len(chunks)
        ):
            results = tuple(self.pipeline.transcribe(c) for c in chunks)
        # Chunks re-cover audio both by the configured overlap and by
        # the final flush; words re-recognized from re-covered samples
        # must not appear twice in the joined transcript.
        overlap_fractions = [0.0]
        overlap_samples_total = 0
        for (prev_s0, prev_s1), (s0, s1) in zip(spans, spans[1:]):
            overlap = max(prev_s1 - s0, 0)
            overlap_samples_total += overlap
            overlap_fractions.append(overlap / max(s1 - s0, 1))
        text, dedup_words = dedup_join(
            [r.text for r in results], overlap_fractions
        )
        result = StreamingResult(
            text=text,
            chunk_results=results,
            audio_seconds=np.asarray(waveform).size / self._sample_rate,
            details={
                # Op count of the block program each chunk executes
                # (every chunk runs the same padded-length program).
                "program_ops_per_chunk": float(
                    self.pipeline.accelerator.program().num_ops
                ),
                "overlap_samples_total": float(overlap_samples_total),
                "dedup_words": float(dedup_words),
            },
        )
        reg = obs_metrics.registry()
        if reg.enabled:
            reg.counter("repro.asr.streaming.utterances").inc()
            reg.counter("repro.asr.streaming.chunks").inc(result.num_chunks)
            if result.audio_seconds > 0:
                reg.gauge("repro.asr.streaming.rtf").set(result.real_time_factor)
        return result
