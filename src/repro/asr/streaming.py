"""Chunked (streaming-style) transcription of long utterances.

The synthesized hardware handles a fixed sequence length (s = 32 in the
paper, ~1.4 s of audio).  LibriSpeech utterances run 1-15 s, so a
real-time deployment processes audio in chunks: the host frontend
windows the waveform, each chunk runs through the accelerator
independently, and the transcripts are concatenated.  This module
implements that host-side chunking and accounts latency per chunk —
the "suitable for real-time applications" claim of the abstract means
exactly that per-chunk latency (~120 ms) stays far below chunk duration
(~1.4 s), i.e. a real-time factor well under 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asr.pipeline import AsrPipeline, TranscriptionResult
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


@dataclass(frozen=True)
class StreamingResult:
    """Concatenated transcript plus per-chunk accounts."""

    text: str
    chunk_results: tuple[TranscriptionResult, ...]
    audio_seconds: float
    details: dict[str, float] = field(default_factory=dict)

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_results)

    @property
    def total_accelerator_ms(self) -> float:
        return sum(r.accelerator_ms for r in self.chunk_results)

    @property
    def total_e2e_ms(self) -> float:
        return sum(r.e2e_ms for r in self.chunk_results)

    @property
    def real_time_factor(self) -> float:
        """Processing time / audio time; < 1 means real-time capable."""
        if self.audio_seconds <= 0:
            raise ValueError("no audio processed")
        return (self.total_e2e_ms / 1e3) / self.audio_seconds


class StreamingTranscriber:
    """Chunk a long waveform to fit the fixed-s hardware."""

    def __init__(self, pipeline: AsrPipeline, overlap_s: float = 0.0) -> None:
        if overlap_s < 0:
            raise ValueError("overlap_s must be non-negative")
        self.pipeline = pipeline
        self.overlap_s = overlap_s
        self._sample_rate = pipeline.preprocessor.frontend.config.sample_rate
        self.chunk_samples = self._max_chunk_samples()
        overlap = int(round(overlap_s * self._sample_rate))
        if overlap >= self.chunk_samples:
            raise ValueError("overlap exceeds the chunk size")
        self.hop_samples = self.chunk_samples - overlap

    def _max_chunk_samples(self) -> int:
        """Longest waveform whose feature sequence fits hw_seq_len."""
        prep = self.pipeline.preprocessor
        hw_len = self.pipeline.accelerator.hw_seq_len
        # Invert the frontend+subsampler length arithmetic by search
        # (both are monotone step functions of the sample count).
        lo = 1
        hi = self._sample_rate * 30
        while prep.sequence_length(hi) <= hw_len:
            hi *= 2
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if prep.sequence_length(mid) <= hw_len:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def chunk(self, waveform: np.ndarray) -> list[np.ndarray]:
        """Split a waveform into hardware-sized chunks."""
        w = np.asarray(waveform, dtype=np.float64)
        if w.ndim != 1:
            raise ValueError("waveform must be one-dimensional")
        if w.size == 0:
            raise ValueError("waveform is empty")
        if w.size <= self.chunk_samples:
            return [w]
        starts: list[int] = []
        start = 0
        while start + self.chunk_samples < w.size:
            starts.append(start)
            start += self.hop_samples
        # Flush the final chunk to the end of the waveform (it overlaps
        # its predecessor rather than dropping a short tail).
        final = w.size - self.chunk_samples
        if not starts or final > starts[-1]:
            starts.append(final)
        return [w[s0 : s0 + self.chunk_samples] for s0 in starts]

    def transcribe(self, waveform: np.ndarray) -> StreamingResult:
        """Transcribe a waveform of arbitrary length chunk by chunk."""
        chunks = self.chunk(waveform)
        if not chunks:
            raise ValueError("waveform too short for even one chunk")
        with obs_spans.tracer().span(
            "asr.streaming.transcribe", chunks=len(chunks)
        ):
            results = tuple(self.pipeline.transcribe(c) for c in chunks)
        text = " ".join(r.text for r in results if r.text).strip()
        result = StreamingResult(
            text=text,
            chunk_results=results,
            audio_seconds=np.asarray(waveform).size / self._sample_rate,
            details={
                # Op count of the block program each chunk executes
                # (every chunk runs the same padded-length program).
                "program_ops_per_chunk": float(
                    self.pipeline.accelerator.program().num_ops
                ),
            },
        )
        reg = obs_metrics.registry()
        if reg.enabled:
            reg.counter("repro.asr.streaming.utterances").inc()
            reg.counter("repro.asr.streaming.chunks").inc(result.num_chunks)
            if result.audio_seconds > 0:
                reg.gauge("repro.asr.streaming.rtf").set(result.real_time_factor)
        return result
