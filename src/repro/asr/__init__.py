"""End-to-end ASR system: synthetic corpus + host/accelerator pipeline."""

from repro.asr.batch import BatchResult, BatchTranscriber
from repro.asr.dataset import LibriSpeechLikeDataset, Utterance
from repro.asr.pipeline import (
    AsrPipeline,
    HostPreprocessor,
    HostTimingModel,
    TranscriptionResult,
)
from repro.asr.streaming import StreamingResult, StreamingTranscriber

__all__ = [
    "BatchResult",
    "BatchTranscriber",
    "LibriSpeechLikeDataset",
    "Utterance",
    "AsrPipeline",
    "HostPreprocessor",
    "HostTimingModel",
    "TranscriptionResult",
    "StreamingResult",
    "StreamingTranscriber",
]
