"""The end-to-end ASR pipeline (Fig 5.1 / Section 5.1.6).

Stages, exactly as in the paper's E2E flow:

0. *Data preparation* — PCM decode and validation (host).
1. *Feature generation* — 80-dim log-mel fbank (host).
2. *Subsampling* — Conv2D + pooling front block to ``d_model`` (host).
3. *Decoding* — the Transformer, offloaded to the (simulated) FPGA
   accelerator, followed by greedy/beam character decoding.

Section 5.1.6 reports the combined host-side latency as 36.3 ms and an
overall E2E latency of 120.45 ms at s=32 (11.88 sequences/s through the
accelerator alone); :class:`HostTimingModel` reproduces that budget
while the pipeline also records the *actual* wall-clock host time on
this machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import ModelConfig
from repro.decoding.beam import beam_search
from repro.decoding.greedy import greedy_decode
from repro.decoding.vocab import CharVocabulary
from repro.frontend.features import FrontendConfig, LogMelFrontend
from repro.frontend.subsampling import Conv2dSubsampling
from repro.hw.accelerator import TransformerAccelerator
from repro.hw.controller import LatencyReport
from repro.model.ops import MODEL_DTYPE
from repro.model.params import TransformerParams
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


@dataclass(frozen=True)
class HostTimingModel:
    """Calibrated host-side latency (paper: 36.3 ms at s=32).

    The budget splits between data preparation and feature generation
    proportionally to audio duration, with a fixed floor for the
    process/pipeline overheads the paper's Kaldi-style scripts carry.
    """

    #: Fixed host overhead per utterance (script startup, scp plumbing).
    fixed_ms: float = 21.0
    #: Variable cost per second of audio (fbank + conv subsampling).
    per_audio_second_ms: float = 11.25

    def __post_init__(self) -> None:
        if self.fixed_ms < 0 or self.per_audio_second_ms < 0:
            raise ValueError("timing components must be non-negative")

    def host_ms(self, audio_seconds: float) -> float:
        if audio_seconds < 0:
            raise ValueError("audio_seconds must be non-negative")
        return self.fixed_ms + self.per_audio_second_ms * audio_seconds


class HostPreprocessor:
    """Stages 0-2: waveform -> (s, d_model) encoder input."""

    def __init__(
        self,
        model_config: ModelConfig | None = None,
        frontend_config: FrontendConfig | None = None,
        subsampler: Conv2dSubsampling | None = None,
        seed: int = 0,
    ) -> None:
        self.model_config = model_config or ModelConfig()
        self.frontend = LogMelFrontend(frontend_config)
        self.subsampler = subsampler or Conv2dSubsampling(
            self.model_config.feature_dim,
            self.model_config.d_model,
            rng=np.random.default_rng(seed),
        )
        if self.subsampler.feature_dim != self.model_config.feature_dim:
            raise ValueError("subsampler feature_dim mismatch")
        if self.subsampler.d_model != self.model_config.d_model:
            raise ValueError("subsampler d_model mismatch")

    def __call__(self, waveform: np.ndarray) -> np.ndarray:
        """Extract the (s, d_model) encoder-input sequence."""
        feats = self.frontend(np.asarray(waveform, dtype=np.float64))
        if feats.shape[0] < self.subsampler.min_input_frames():
            raise ValueError(
                f"utterance too short: {feats.shape[0]} frames, need "
                f">= {self.subsampler.min_input_frames()}"
            )
        return self.subsampler(feats).astype(MODEL_DTYPE)

    def sequence_length(self, num_samples: int) -> int:
        """Hardware sequence length produced by an utterance."""
        frames = self.frontend.num_output_frames(num_samples)
        return self.subsampler.output_time_dim(frames)


@dataclass(frozen=True)
class TranscriptionResult:
    """Everything one transcription run produced."""

    text: str
    #: ESPnet-style rendering with '_' separators (Fig 5.1).
    espnet_text: str
    tokens: np.ndarray
    sequence_length: int
    #: Measured wall-clock host preprocessing time on this machine.
    measured_host_ms: float
    #: Calibrated host time per the paper's budget (36.3 ms at s=32).
    modeled_host_ms: float
    accelerator_report: LatencyReport
    #: Modeled latency of the KV-cached autoregressive decode (one
    #: entry per emitted position); None only if decode was not modeled.
    decode_report: LatencyReport | None = None
    details: dict[str, float] = field(default_factory=dict)

    @property
    def accelerator_ms(self) -> float:
        """Single-shot (teacher-forced) accelerator pass at the padded
        hardware length — the prefill cost in a serving flow."""
        return self.accelerator_report.latency_ms

    @property
    def decode_total_ms(self) -> float:
        """Modeled token-by-token decode latency over all positions."""
        if self.decode_report is None:
            return 0.0
        return self.decode_report.latency_ms

    @property
    def decode_per_token_ms(self) -> float:
        """Mean modeled decode latency per emitted position."""
        if self.decode_report is None:
            return 0.0
        tokens = self.decode_report.details.get("decode_tokens", 1.0)
        return self.decode_total_ms / max(tokens, 1.0)

    @property
    def e2e_ms(self) -> float:
        """Modeled end-to-end latency: host preprocessing + accelerator
        prefill pass + autoregressive decode steps."""
        return self.modeled_host_ms + self.accelerator_ms + self.decode_total_ms

    @property
    def throughput_seq_per_s(self) -> float:
        """Accelerator-side throughput (Section 5.1.6: 11.88 seq/s)."""
        return 1e3 / self.accelerator_ms


class AsrPipeline:
    """Waveform in, text out, with a full latency account.

    Three decode engines drive the autoregressive loop:

    * ``"hw"`` (default) — the KV-cached hardware path: encoder prefill
      plus one-time cross-attention K/V projection, then each token
      steps a 1-row query through the simulated fabric.  Supports
      greedy and beam search (branching rewinds the cache to the
      common stem).
    * ``"hw-full"`` — the legacy full-prefix path kept for A/B: every
      step re-runs the full padded decoder stack at ``t = hw_seq_len``.
      Functionally identical to ``"hw"``, asymptotically slower.
    * ``"incremental"`` — the host-side KV-cached reference decoder
      (:mod:`repro.model.incremental`) over the accelerator's encoder
      memory; greedy only (it caches a single hypothesis).

    All engines report the same modeled latency: a single-shot padded
    accelerator pass (prefill) in ``accelerator_report`` plus the
    KV-cached autoregressive account in ``decode_report``.
    """

    def __init__(
        self,
        params: TransformerParams,
        vocab: CharVocabulary | None = None,
        hw_seq_len: int = 32,
        architecture: str = "A3",
        preprocessor: HostPreprocessor | None = None,
        host_timing: HostTimingModel | None = None,
        max_output_chars: int | None = None,
        decode_engine: str = "hw",
    ) -> None:
        self.vocab = vocab or CharVocabulary()
        if len(self.vocab) != params.config.vocab_size:
            raise ValueError(
                f"vocabulary size {len(self.vocab)} does not match model "
                f"vocab_size {params.config.vocab_size}"
            )
        self.accelerator = TransformerAccelerator(
            params, hw_seq_len=hw_seq_len, architecture=architecture
        )
        self.preprocessor = preprocessor or HostPreprocessor(params.config)
        self.host_timing = host_timing or HostTimingModel()
        if max_output_chars is None:
            max_output_chars = hw_seq_len - 1
        if max_output_chars <= 0:
            raise ValueError(
                f"max_output_chars must be positive; got {max_output_chars}"
            )
        self.max_output_chars = max_output_chars
        if decode_engine not in ("hw", "hw-full", "incremental"):
            raise ValueError(
                "decode_engine must be 'hw' (KV-cached steps through the "
                "simulated fabric), 'hw-full' (legacy full-prefix pass per "
                "token) or 'incremental' (KV-cached reference decoder over "
                "the accelerator's encoder memory)"
            )
        self.decode_engine = decode_engine
        self._params = params

    def render_schedule_gantt(self, width: int = 100) -> str:
        """ASCII Gantt of the accelerator pass this pipeline models
        (trace-executor timeline of the lowered block program, with the
        per-channel HBM lanes of Fig 4.11)."""
        return self.accelerator.render_gantt(width=width)

    def transcribe(
        self,
        waveform: np.ndarray,
        beam_size: int | None = None,
        *,
        features: np.ndarray | None = None,
        session=None,
    ) -> TranscriptionResult:
        """Run the full E2E flow on one utterance.

        ``features`` and ``session`` let a batch driver inject
        precomputed frontend features and an already-prefilled
        :class:`repro.hw.accelerator.HwDecodeSession` (from a batched
        encoder prefill); both default to per-utterance computation.
        """
        with obs_spans.tracer().span("asr.transcribe") as span:
            result = self._transcribe(
                waveform, beam_size, features=features, session=session
            )
            span.set(
                sequence_length=result.sequence_length,
                tokens=int(result.tokens.size),
            )
        self._record_metrics(result)
        return result

    def _transcribe(
        self,
        waveform: np.ndarray,
        beam_size: int | None,
        features: np.ndarray | None = None,
        session=None,
    ) -> TranscriptionResult:
        waveform = np.asarray(waveform, dtype=np.float64)
        if features is None:
            start = time.perf_counter()
            with obs_spans.tracer().span("asr.preprocess"):
                features = self.preprocessor(waveform)
            measured_host_ms = (time.perf_counter() - start) * 1e3
        else:
            # Precomputed upstream (batched prefill); the host cost was
            # paid there, so nothing is measured here.
            features = np.asarray(features)
            measured_host_ms = 0.0

        s = features.shape[0]
        if s > self.accelerator.hw_seq_len:
            raise ValueError(
                f"utterance produces sequence length {s} but the hardware "
                f"was synthesized for {self.accelerator.hw_seq_len}; use a "
                f"shorter utterance or a larger hw_seq_len"
            )
        if beam_size is not None and beam_size <= 0:
            raise ValueError(f"beam_size must be positive; got {beam_size}")
        if session is not None:
            if self.decode_engine != "hw":
                raise ValueError(
                    "a precomputed decode session requires decode_engine="
                    f"'hw'; this pipeline uses '{self.decode_engine}'"
                )
            step = session.step_fn()
        elif self.decode_engine == "incremental":
            if beam_size is not None:
                raise ValueError(
                    "the incremental engine caches one hypothesis; use "
                    "decode_engine='hw' for beam search"
                )
            from repro.model.incremental import IncrementalDecoder

            memory = self.accelerator.forward(
                features, np.array([self.vocab.sos_id])
            ).memory
            step = IncrementalDecoder(self._params, memory).step_fn()
        else:
            step = self.accelerator.step_fn(
                features, use_kv_cache=self.decode_engine == "hw"
            )
        with obs_spans.tracer().span(
            "asr.decode", engine=self.decode_engine
        ):
            if beam_size is not None:
                hyps = beam_search(
                    step,
                    self.vocab.sos_id,
                    self.vocab.eos_id,
                    max_len=self.max_output_chars,
                    beam_size=beam_size,
                )
                tokens = np.asarray(hyps[0].tokens[1:], dtype=np.int64)
            else:
                tokens = greedy_decode(
                    step,
                    self.vocab.sos_id,
                    self.vocab.eos_id,
                    max_len=self.max_output_chars,
                )
        text = self.vocab.decode(tokens)
        # The synthesized hardware always processes its fixed sequence
        # length; shorter inputs are padded (Section 5.1.5), so the
        # prefill latency is that of the full hw_seq_len pass.
        report = self.accelerator.latency_report(self.accelerator.hw_seq_len)
        # Modeled autoregressive decode: one KV-cached step per decoded
        # position (the emitted tokens plus the step that produced the
        # stop decision, capped by the output budget).
        decode_steps = min(tokens.size + 1, self.max_output_chars)
        decode_report = self.accelerator.autoregressive_report(decode_steps)
        audio_seconds = waveform.size / self.preprocessor.frontend.config.sample_rate
        return TranscriptionResult(
            text=text,
            espnet_text=self.vocab.decode_espnet_style(tokens),
            tokens=tokens,
            sequence_length=s,
            measured_host_ms=measured_host_ms,
            modeled_host_ms=self.host_timing.host_ms(audio_seconds),
            accelerator_report=report,
            decode_report=decode_report,
            details={
                "audio_seconds": audio_seconds,
                "decode_steps": float(decode_steps),
            },
        )

    def _record_metrics(self, result: TranscriptionResult) -> None:
        """Publish the per-utterance latency account to the metrics
        registry (no-op unless a telemetry session is active)."""
        reg = obs_metrics.registry()
        if not reg.enabled:
            return
        reg.counter("repro.asr.utterances").inc()
        reg.counter("repro.asr.tokens").inc(int(result.tokens.size))
        reg.counter("repro.asr.decode_steps").inc(
            result.details.get("decode_steps", 0.0)
        )
        reg.histogram("repro.e2e_ms").observe(result.e2e_ms)
        reg.gauge("repro.asr.host_ms").set(result.modeled_host_ms)
        reg.gauge("repro.asr.host_measured_ms").set(result.measured_host_ms)
        reg.gauge("repro.asr.accel_ms").set(result.accelerator_ms)
        reg.gauge("repro.asr.decode_ms").set(result.decode_total_ms)
        reg.gauge("repro.asr.throughput_seq_per_s").set(
            result.throughput_seq_per_s
        )
        audio_seconds = result.details.get("audio_seconds", 0.0)
        e2e_s = result.e2e_ms / 1e3
        if audio_seconds > 0:
            reg.gauge("repro.asr.rtf").set(e2e_s / audio_seconds)
        if e2e_s > 0:
            reg.gauge("repro.asr.frames_per_s").set(
                result.sequence_length / e2e_s
            )
