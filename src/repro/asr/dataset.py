"""Synthetic LibriSpeech-like corpus.

LibriSpeech is 1000 h of 16 kHz read English speech with per-utterance
transcripts.  We cannot ship it, so this module generates a corpus with
the same *shape*: utterances of a few words drawn from a fixed lexicon,
rendered to waveforms by the deterministic formant synthesizer in
:mod:`repro.frontend.audio`, with transcripts attached.  The
grapheme-to-acoustics mapping is learnable, which is what the toy
training study (Section 5.1.1's WER experiment) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decoding.vocab import CharVocabulary
from repro.frontend.audio import SynthesisConfig, synthesize_utterance

#: A small read-speech-flavoured lexicon.
DEFAULT_LEXICON: tuple[str, ...] = (
    "the", "a", "and", "of", "to", "in", "he", "she", "it", "was",
    "that", "his", "her", "with", "for", "as", "had", "you", "not", "be",
    "at", "on", "by", "all", "this", "they", "from", "but", "we", "said",
)


@dataclass(frozen=True)
class Utterance:
    """One corpus item: id, speaker, transcript, waveform."""

    utterance_id: str
    speaker_id: int
    transcript: str
    waveform: np.ndarray

    @property
    def duration_s(self) -> float:
        return self.waveform.size / 16_000.0


class LibriSpeechLikeDataset:
    """Deterministic synthetic corpus generator."""

    def __init__(
        self,
        vocab: CharVocabulary | None = None,
        lexicon: tuple[str, ...] = DEFAULT_LEXICON,
        synthesis: SynthesisConfig | None = None,
        num_speakers: int = 8,
        seed: int = 0,
    ) -> None:
        if not lexicon:
            raise ValueError("lexicon must not be empty")
        if num_speakers < 1:
            raise ValueError("num_speakers must be >= 1")
        self.vocab = vocab or CharVocabulary()
        self.lexicon = lexicon
        self.synthesis = synthesis or SynthesisConfig()
        self.num_speakers = num_speakers
        self._seed = seed

    def make_transcript(
        self, rng: np.random.Generator, min_words: int = 2, max_words: int = 5
    ) -> str:
        """A random short sentence from the lexicon."""
        if not 1 <= min_words <= max_words:
            raise ValueError("need 1 <= min_words <= max_words")
        n = int(rng.integers(min_words, max_words + 1))
        return " ".join(rng.choice(self.lexicon) for _ in range(n))

    def synthesize(self, transcript: str, utterance_seed: int) -> np.ndarray:
        """Render a transcript to a waveform (deterministic per seed)."""
        char_ids = self.vocab.encode(transcript)
        rng = np.random.default_rng(utterance_seed)
        return synthesize_utterance(char_ids, self.synthesis, rng=rng)

    def generate(
        self, count: int, min_words: int = 2, max_words: int = 5
    ) -> list[Utterance]:
        """Generate ``count`` utterances (deterministic for a dataset)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        rng = np.random.default_rng(self._seed)
        utterances = []
        for i in range(count):
            transcript = self.make_transcript(rng, min_words, max_words)
            speaker = int(rng.integers(self.num_speakers))
            waveform = self.synthesize(transcript, utterance_seed=self._seed + i + 1)
            utterances.append(
                Utterance(
                    utterance_id=f"{speaker:04d}-{i:06d}",
                    speaker_id=speaker,
                    transcript=transcript,
                    waveform=waveform,
                )
            )
        return utterances

    def train_test_split(
        self, count: int, test_fraction: float = 0.2
    ) -> tuple[list[Utterance], list[Utterance]]:
        """Deterministic split into train and held-out utterances."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        utterances = self.generate(count)
        n_test = max(int(round(count * test_fraction)), 1)
        return utterances[:-n_test], utterances[-n_test:]
