"""Batch transcription with back-to-back accelerator accounting.

Transcribing a directory of utterances (the usual offline workload)
keeps the accelerator busy back to back: the next sequence's first
weight loads are prefetched during the current one's tail (the ``LW+``
bars of Figs 4.8-4.10), so batch latency amortizes below
``n x single_shot``.  :class:`BatchTranscriber` runs the functional
pipeline per utterance and accounts the batch with the steady-state
throughput model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asr.pipeline import AsrPipeline, TranscriptionResult


@dataclass(frozen=True)
class BatchResult:
    """Transcripts plus the amortized latency account."""

    results: tuple[TranscriptionResult, ...]
    #: Naive total: every inference billed at single-shot latency.
    single_shot_ms: float
    #: Amortized total with back-to-back prefetch across sequences.
    pipelined_ms: float
    details: dict[str, float] = field(default_factory=dict)

    @property
    def texts(self) -> list[str]:
        return [r.text for r in self.results]

    @property
    def num_utterances(self) -> int:
        return len(self.results)

    @property
    def pipelining_gain(self) -> float:
        """single-shot / pipelined; >= 1."""
        if self.pipelined_ms <= 0:
            raise ValueError(
                f"pipelined_ms must be positive; got {self.pipelined_ms}"
            )
        return self.single_shot_ms / self.pipelined_ms

    @property
    def throughput_seq_per_s(self) -> float:
        if self.pipelined_ms <= 0:
            raise ValueError(
                f"pipelined_ms must be positive; got {self.pipelined_ms}"
            )
        return self.num_utterances / (self.pipelined_ms / 1e3)


class BatchTranscriber:
    """Transcribe many utterances with amortized accounting."""

    def __init__(self, pipeline: AsrPipeline) -> None:
        self.pipeline = pipeline

    def transcribe_batch(
        self,
        waveforms: list[np.ndarray],
        beam_size: int | None = None,
        batched_prefill: bool = True,
    ) -> BatchResult:
        """Transcribe ``waveforms``; with ``batched_prefill`` (default)
        and the KV-cached hardware engine, all encoder prefills run as
        ONE batched (B, S, d_model) pass through the fabric — the MM
        stages execute as single large GEMMs — before the per-utterance
        decodes.  Functionally identical to the sequential path (the
        batched kernels are bit-exact); only wall clock changes.
        """
        if not waveforms:
            raise ValueError("batch must contain at least one waveform")
        use_batched = (
            batched_prefill
            and len(waveforms) > 1
            and self.pipeline.decode_engine == "hw"
        )
        if use_batched:
            feats = [
                self.pipeline.preprocessor(np.asarray(w, dtype=np.float64))
                for w in waveforms
            ]
            sessions = self.pipeline.accelerator.decode_sessions_batch(feats)
            results = tuple(
                self.pipeline.transcribe(
                    w, beam_size=beam_size, features=f, session=sess
                )
                for w, f, sess in zip(waveforms, feats, sessions)
            )
        else:
            results = tuple(
                self.pipeline.transcribe(w, beam_size=beam_size)
                for w in waveforms
            )
        accel = self.pipeline.accelerator
        lm = accel.latency_model
        s = accel.hw_seq_len
        arch = accel.architecture
        # Every utterance runs the same padded hw_seq_len pass, so the
        # per-result report *is* the single-shot latency — reuse it
        # instead of recomputing, so the two accountings cannot drift.
        single_ms = results[0].accelerator_ms
        n = len(waveforms)
        if n == 1:
            pipelined_ms = single_ms
        else:
            spacing_s = 1.0 / lm.steady_state_throughput(
                s, arch, num_sequences=max(n, 2)
            )
            # First inference pays the full pipe fill; the rest the
            # steady-state spacing.
            pipelined_ms = single_ms + (n - 1) * spacing_s * 1e3
        return BatchResult(
            results=results,
            single_shot_ms=sum(r.accelerator_ms for r in results),
            pipelined_ms=pipelined_ms,
            details={"batched_prefill": float(use_batched)},
        )
