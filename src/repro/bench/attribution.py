"""Automated bottleneck attribution.

Answers "where did the cycles go, and why" from the model itself
rather than from hardcoded paper numbers:

* classifies every schedulable block of the lowered program as
  load-bound or compute-bound (the per-block view behind Figs 4.8–4.11
  and the Table 5.1 stalls);
* locates the Fig 5.2 load/compute crossover by walking the cycle
  model (`LatencyModel.crossover_sequence_length`, the paper observes
  s > 18);
* builds the §4.2 roofline table per matmul MM1–MM6: FLOPs, HBM weight
  traffic, operational intensity, and what the roofline says each can
  attain.  MM2/MM3 multiply two on-chip activations and stream no HBM
  weights, which the table states instead of fabricating an intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.baselines.roofline import RooflineModel, accelerator_roofline
from repro.hw.controller import LatencyModel
from repro.hw.introspect import STALL_CAUSES, classify_stalls
from repro.hw.kernels import matmul_dims
from repro.hw.program import program_block_work

__all__ = [
    "BlockAttribution",
    "MatmulRoofline",
    "ArchStallSummary",
    "AttributionReport",
    "build_attribution_report",
]

#: Matmuls whose second operand is a weight panel streamed from HBM;
#: MM2 (QK^T) and MM3 (attn·V) consume on-chip activations only.
_WEIGHT_MATMULS = frozenset({"MM1", "MM4", "MM5", "MM6"})


@dataclass(frozen=True)
class BlockAttribution:
    """One schedulable block's load-vs-compute account."""

    label: str
    load_cycles: int
    compute_cycles: int

    @property
    def bound(self) -> str:
        return "load" if self.load_cycles > self.compute_cycles else "compute"

    @property
    def ratio(self) -> float:
        """load / compute; > 1 means the block is load-bound."""
        if self.compute_cycles == 0:
            return float("inf") if self.load_cycles else 0.0
        return self.load_cycles / self.compute_cycles


@dataclass(frozen=True)
class MatmulRoofline:
    """One MM1–MM6 row of the §4.2 roofline table."""

    name: str
    dims: tuple[tuple[int, int], tuple[int, int], tuple[int, int]]
    flops: int
    hbm_bytes: int
    #: FLOPs per HBM byte; None when the matmul streams no HBM weights.
    intensity: float | None
    attainable_gflops: float | None
    #: "memory" / "compute" against the roofline ridge, or "on-chip"
    #: when the matmul streams no HBM weights at all.
    bound: str = "on-chip"


@dataclass(frozen=True)
class ArchStallSummary:
    """One architecture's per-cause stall account at the report's s.

    ``psa_totals`` restricts the account to the PSA lanes — the Table
    5.1 quantity (how long the matrix engines sat idle, and why).
    """

    architecture: str
    makespan: float
    totals: dict[str, float]
    psa_totals: dict[str, float]
    psa_dominant: str | None

    def psa_stall_cycles(self, cause: str) -> float:
        return self.psa_totals.get(cause, 0.0)


@dataclass
class AttributionReport:
    """The full bottleneck-attribution account at one design point."""

    architecture: str
    s: int
    crossover_s: int
    blocks: list[BlockAttribution]
    roofline: RooflineModel
    matmuls: list[MatmulRoofline]
    #: Per-architecture stall-cause account (A1, A2, A3 order).
    stalls: list[ArchStallSummary] = field(default_factory=list)

    def stall_summary(self, architecture: str) -> ArchStallSummary:
        for summary in self.stalls:
            if summary.architecture == architecture:
                return summary
        raise KeyError(f"no stall summary for architecture '{architecture}'")

    @property
    def load_bound_blocks(self) -> list[BlockAttribution]:
        return [b for b in self.blocks if b.bound == "load"]

    @property
    def compute_bound_blocks(self) -> list[BlockAttribution]:
        return [b for b in self.blocks if b.bound == "compute"]

    def block_bound(self, label: str) -> str:
        for b in self.blocks:
            if b.label == label:
                return b.bound
        raise KeyError(f"no block labelled '{label}'")

    def format(self) -> str:
        lines = [
            f"bottleneck attribution: architecture {self.architecture}, "
            f"s={self.s}",
            "",
            f"Fig 5.2 crossover (from the cycle model): encoder compute "
            f"exceeds its weight load from s = {self.crossover_s} "
            f"(paper: s > 18); at s={self.s} an encoder block is "
            f"{'compute' if self.s >= self.crossover_s else 'load'}-bound.",
            "",
            "per-block load/compute classification "
            f"({len(self.load_bound_blocks)} load-bound, "
            f"{len(self.compute_bound_blocks)} compute-bound):",
        ]
        lines.append(format_table(
            ["block", "load cyc", "compute cyc", "load/compute", "bound by"],
            [
                [b.label, b.load_cycles, b.compute_cycles,
                 f"{b.ratio:.2f}", b.bound]
                for b in self.blocks
            ],
        ))
        lines.append("")
        lines.append(
            f"roofline (§4.2): peak {self.roofline.peak_gflops:.1f} GFLOPs/s, "
            f"HBM bandwidth {self.roofline.bandwidth_gbps:.1f} GB/s, "
            f"ridge {self.roofline.ridge_point:.2f} FLOP/B"
        )
        rows = []
        for mm in self.matmuls:
            rows.append([
                mm.name,
                "x".join(str(d) for d in mm.dims[0]),
                "x".join(str(d) for d in mm.dims[1]),
                f"{mm.flops / 1e6:.2f}",
                f"{mm.hbm_bytes / 1e3:.1f}" if mm.hbm_bytes else "-",
                f"{mm.intensity:.3f}" if mm.intensity is not None else "-",
                (f"{mm.attainable_gflops:.1f}"
                 if mm.attainable_gflops is not None else "-"),
                mm.bound,
            ])
        lines.append(format_table(
            ["matmul", "in1", "weights", "MFLOP", "HBM kB", "FLOP/B",
             "attainable GF/s", "bound"],
            rows,
        ))
        if self.stalls:
            lines.append("")
            lines.append(
                f"stall-cause attribution at s={self.s} "
                "(PSA-lane idle cycles by cause; Table 5.1 causality):"
            )
            lines.append(format_table(
                ["arch", *STALL_CAUSES, "dominant"],
                [
                    [
                        summ.architecture,
                        *(f"{summ.psa_totals[c]:.0f}" for c in STALL_CAUSES),
                        summ.psa_dominant or "-",
                    ]
                    for summ in self.stalls
                ],
            ))
            try:
                a1 = self.stall_summary("A1")
                a3 = self.stall_summary("A3")
            except KeyError:
                pass
            else:
                delta = (
                    a1.psa_stall_cycles("load_starved")
                    - a3.psa_stall_cycles("load_starved")
                )
                lines.append(
                    "A1->A3 shift: two-channel prefetch hides "
                    f"{delta:.0f} PSA load-starved cycles "
                    f"({a1.psa_stall_cycles('load_starved'):.0f} -> "
                    f"{a3.psa_stall_cycles('load_starved'):.0f}); dominant "
                    f"PSA stall moves {a1.psa_dominant or '-'} -> "
                    f"{a3.psa_dominant or '-'}."
                )
        return "\n".join(lines)


def build_attribution_report(
    s: int = 32,
    architecture: str = "A3",
    latency_model: LatencyModel | None = None,
) -> AttributionReport:
    """Derive the attribution report from the cycle model at one
    (s, architecture) design point."""
    if s <= 0:
        raise ValueError("s must be positive")
    lm = latency_model or LatencyModel()
    program = lm.full_pass_program(s)
    blocks = [
        BlockAttribution(w.label, w.load_cycles, w.compute_cycles)
        for w in program_block_work(program, architecture)
    ]
    roofline = accelerator_roofline(lm.hardware)
    bpe = lm.hardware.bytes_per_element
    matmuls = []
    d_k = lm.model.d_model // lm.model.num_heads
    for name, (in1, in2, out) in matmul_dims(
        s, lm.model.d_model, d_k, lm.model.d_ff
    ).items():
        l, m = in1
        n = in2[1]
        flops = 2 * l * m * n
        if name in _WEIGHT_MATMULS:
            hbm_bytes = in2[0] * in2[1] * bpe
            intensity = flops / hbm_bytes
            attainable = roofline.attainable_gflops(intensity)
            bound = (
                "memory" if roofline.is_memory_bound(intensity) else "compute"
            )
        else:
            hbm_bytes = 0
            intensity = None
            attainable = None
            bound = "on-chip"
        matmuls.append(MatmulRoofline(
            name=name, dims=(in1, in2, out), flops=flops,
            hbm_bytes=hbm_bytes, intensity=intensity,
            attainable_gflops=attainable, bound=bound,
        ))
    stalls = []
    for arch in ("A1", "A2", "A3"):
        report = classify_stalls(program, arch)
        report.verify_conservation()
        stalls.append(ArchStallSummary(
            architecture=arch,
            makespan=report.makespan,
            totals=report.totals(),
            psa_totals=report.totals(".psa"),
            psa_dominant=report.dominant_cause(".psa"),
        ))
    return AttributionReport(
        architecture=str(architecture),
        s=s,
        crossover_s=lm.crossover_sequence_length(),
        blocks=blocks,
        roofline=roofline,
        matmuls=matmuls,
        stalls=stalls,
    )
