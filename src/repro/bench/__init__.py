"""Performance-trajectory harness: scenario runner, snapshots,
regression gating and bottleneck attribution.

The paper's evaluation is an analysis of where cycles go (Fig 5.2,
§4.2, Table 5.1); :mod:`repro.bench` turns that one-shot analysis into
a trajectory that can be tracked across changes:

* :mod:`repro.bench.scenarios` — a declarative scenario suite (encoder
  prefill, KV-cached decode, streaming, the A1/A2/A3 × sequence-length
  sweep).  Each scenario runs under :func:`repro.obs.telemetry`,
  collecting median-of-k wall-clock timings with a robust spread plus
  the simulator's *deterministic* cycle metrics.
* :mod:`repro.bench.snapshot` — schema-versioned ``BENCH_<n>.json``
  snapshots with an environment fingerprint.
* :mod:`repro.bench.compare` — diffs a snapshot against a committed
  baseline: exact-match gating for cycle counts, noise-aware
  thresholds for wall-clock.
* :mod:`repro.bench.attribution` — classifies each block as load- or
  compute-bound, locates the Fig 5.2 crossover from the model, and
  builds the §4.2 roofline table per matmul MM1–MM6.

CLI surface: ``repro-asr bench run|compare|report``.
"""

from __future__ import annotations

from repro.bench.attribution import (
    AttributionReport,
    BlockAttribution,
    MatmulRoofline,
    build_attribution_report,
)
from repro.bench.compare import ComparisonReport, Finding, compare_snapshots
from repro.bench.delta import (
    MetricDelta,
    ScenarioDelta,
    SnapshotDelta,
    attribution_lines,
    diff_profile_dicts,
    diff_snapshots,
    render_snapshot_delta,
)
from repro.bench.scenarios import (
    Scenario,
    ScenarioResult,
    default_scenarios,
    run_scenario,
    run_suite,
)
from repro.bench.snapshot import (
    SNAPSHOT_SCHEMA,
    WallStats,
    build_snapshot,
    environment_fingerprint,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_path,
    write_snapshot,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "default_scenarios",
    "run_scenario",
    "run_suite",
    "SNAPSHOT_SCHEMA",
    "WallStats",
    "build_snapshot",
    "environment_fingerprint",
    "latest_snapshot_path",
    "load_snapshot",
    "next_snapshot_path",
    "write_snapshot",
    "ComparisonReport",
    "Finding",
    "compare_snapshots",
    "MetricDelta",
    "ScenarioDelta",
    "SnapshotDelta",
    "diff_snapshots",
    "diff_profile_dicts",
    "attribution_lines",
    "render_snapshot_delta",
    "AttributionReport",
    "BlockAttribution",
    "MatmulRoofline",
    "build_attribution_report",
]
