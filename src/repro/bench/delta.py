"""Offline differential profiling over bench artifacts.

The live engine (:mod:`repro.obs.diffprof`) diffs two traced program
executions; this module diffs the *recorded* forms the repo already
ships around: two schema-versioned ``BENCH_<n>.json`` snapshots, or
the embedded :class:`repro.obs.diffprof.RunProfile` payloads scenario
runners attach to them.  It also builds the attribution text the
comparator (:mod:`repro.bench.compare`) appends to exact-gate cycle
failures, so a red CI gate names the (block, engine, cause) triples
the cycles moved on instead of just the metric that drifted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.snapshot import SNAPSHOT_SCHEMA
from repro.obs.diffprof import DeltaWaterfall, RunProfile, diff_profiles

__all__ = [
    "MetricDelta",
    "ScenarioDelta",
    "SnapshotDelta",
    "diff_snapshots",
    "diff_profile_dicts",
    "attribution_lines",
    "render_snapshot_delta",
]


@dataclass(frozen=True)
class MetricDelta:
    """One cycle metric that moved between two snapshots."""

    metric: str
    base: float
    cand: float

    @property
    def delta(self) -> float:
        return self.cand - self.base


@dataclass
class ScenarioDelta:
    """One scenario's delta: changed metrics plus, when both snapshots
    embedded a run profile, the full conservation-checked waterfall."""

    name: str
    metrics: list[MetricDelta] = field(default_factory=list)
    waterfall: DeltaWaterfall | None = None

    @property
    def changed(self) -> bool:
        return bool(self.metrics) or (
            self.waterfall is not None and not self.waterfall.is_zero
        )


@dataclass
class SnapshotDelta:
    """The full diff of two bench snapshots."""

    scenarios: dict[str, ScenarioDelta] = field(default_factory=dict)
    only_base: list[str] = field(default_factory=list)
    only_cand: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.only_base or self.only_cand) or any(
            sc.changed for sc in self.scenarios.values()
        )

    def as_dict(self) -> dict:
        return {
            "only_base": list(self.only_base),
            "only_cand": list(self.only_cand),
            "scenarios": {
                name: {
                    "metrics": [
                        {"metric": m.metric, "base": m.base,
                         "cand": m.cand, "delta": m.delta}
                        for m in sc.metrics
                    ],
                    "waterfall": (
                        sc.waterfall.as_dict() if sc.waterfall else None
                    ),
                }
                for name, sc in sorted(self.scenarios.items())
                if sc.changed
            },
        }


def diff_profile_dicts(base: dict, cand: dict) -> DeltaWaterfall:
    """Diff two serialized run profiles (snapshot ``profile`` sections
    or ``runprofile.json`` artifacts)."""
    return diff_profiles(RunProfile.from_dict(base), RunProfile.from_dict(cand))


def diff_snapshots(baseline: dict, current: dict) -> SnapshotDelta:
    """Diff two ``BENCH_<n>.json`` snapshots: exact cycle-metric deltas
    per scenario, upgraded to a full delta waterfall wherever both
    snapshots embedded the scenario's run profile."""
    for which, snap in (("baseline", baseline), ("current", current)):
        schema = snap.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"{which} snapshot schema '{schema}' is not "
                f"'{SNAPSHOT_SCHEMA}'"
            )
    b_scenarios = baseline.get("scenarios", {})
    c_scenarios = current.get("scenarios", {})
    out = SnapshotDelta(
        only_base=sorted(set(b_scenarios) - set(c_scenarios)),
        only_cand=sorted(set(c_scenarios) - set(b_scenarios)),
    )
    for name in sorted(set(b_scenarios) & set(c_scenarios)):
        b, c = b_scenarios[name], c_scenarios[name]
        sc = ScenarioDelta(name=name)
        b_cycles, c_cycles = b.get("cycles", {}), c.get("cycles", {})
        for metric in sorted(set(b_cycles) | set(c_cycles)):
            bv = float(b_cycles.get(metric, 0.0))
            cv = float(c_cycles.get(metric, 0.0))
            if bv != cv:
                sc.metrics.append(MetricDelta(metric, bv, cv))
        b_prof, c_prof = b.get("profile"), c.get("profile")
        if b_prof and c_prof:
            sc.waterfall = diff_profile_dicts(b_prof, c_prof)
        out.scenarios[name] = sc
    return out


def attribution_lines(
    waterfall: DeltaWaterfall, top: int = 3
) -> list[str]:
    """The comparator's failure attachment: the top (block, engine,
    cause) triples of a waterfall, formatted one per line."""
    lines = [
        f"Δmakespan {waterfall.makespan_delta:+,} cycles "
        f"({waterfall.base_makespan:,} -> {waterfall.cand_makespan:,})"
    ]
    for leaf in waterfall.top_leaves(top):
        lines.append(
            f"({leaf.block or '-'}, {leaf.engine}, {leaf.cause}) "
            f"{leaf.delta:+,}"
        )
    moved_blocks = sorted(
        waterfall.block_work.items(), key=lambda kv: -abs(sum(kv[1].values()))
    )[:top]
    for label, w in moved_blocks:
        parts = ", ".join(f"{k} {v:+,}" for k, v in sorted(w.items()))
        lines.append(f"unit {label}: {parts}")
    return lines


def render_snapshot_delta(delta: SnapshotDelta, top: int = 5) -> str:
    """Text report of a snapshot diff."""
    from repro.analysis.report import format_table
    from repro.obs.diffprof import render_waterfall

    lines: list[str] = []
    if delta.only_base:
        lines.append("scenarios only in baseline: " + ", ".join(delta.only_base))
    if delta.only_cand:
        lines.append("scenarios only in current:  " + ", ".join(delta.only_cand))
    changed = {n: sc for n, sc in delta.scenarios.items() if sc.changed}
    if not changed and not delta.only_base and not delta.only_cand:
        return "no cycle-metric differences between the snapshots"
    for name, sc in sorted(changed.items()):
        lines.append("")
        lines.append(f"== {name} ==")
        if sc.metrics:
            rows = [
                [m.metric, f"{m.base:g}", f"{m.cand:g}", f"{m.delta:+g}"]
                for m in sc.metrics
            ]
            lines.append(format_table(
                ["cycle metric", "baseline", "current", "Δ"], rows
            ))
        if sc.waterfall is not None and not sc.waterfall.is_zero:
            lines.append("")
            lines.append(render_waterfall(sc.waterfall, top=top))
        elif sc.waterfall is not None:
            lines.append("embedded profiles are cycle-identical")
    return "\n".join(lines).lstrip("\n")
