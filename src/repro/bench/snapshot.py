"""Schema-versioned benchmark snapshots (``BENCH_<n>.json``).

A snapshot records one run of the scenario suite: per-scenario
wall-clock statistics (median-of-k with a robust spread), the
deterministic simulated-cycle metrics, and an environment fingerprint
identifying the machine/interpreter the wall-clock numbers came from.
Cycle metrics are machine-independent (the cycle model is pure
arithmetic) and are gated exactly by the comparator; wall-clock is
machine-dependent and only ever compared with noise-aware thresholds.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

#: Bumped whenever the snapshot layout changes incompatibly.  The
#: comparator refuses to diff snapshots with different schemas.
SNAPSHOT_SCHEMA = "repro.bench/1"

_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class WallStats:
    """Robust wall-clock statistics of one scenario's repeats.

    ``median``/``spread`` are computed over the *finite* samples only
    (``spread`` is the normalized median absolute deviation, which
    estimates a standard deviation without being wrecked by one slow
    outlier).  Non-finite samples are preserved in ``samples`` and
    counted in ``invalid`` so the comparator can flag them.
    """

    samples: tuple[float, ...]
    median: float
    spread: float
    invalid: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "WallStats":
        samples = tuple(float(x) for x in samples)
        finite = sorted(x for x in samples if math.isfinite(x))
        invalid = len(samples) - len(finite)
        if not finite:
            return cls(samples=samples, median=math.nan, spread=math.nan,
                       invalid=invalid)
        med = _median(finite)
        mad = _median(sorted(abs(x - med) for x in finite))
        return cls(
            samples=samples,
            median=med,
            # 1.4826 scales the MAD to a normal-distribution sigma.
            spread=1.4826 * mad,
            invalid=invalid,
        )

    def as_dict(self) -> dict:
        return {
            "samples_ms": list(self.samples),
            "median_ms": self.median,
            "spread_ms": self.spread,
            "repeats": len(self.samples),
            "invalid_samples": self.invalid,
        }


def _median(ordered: Sequence[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def environment_fingerprint() -> dict:
    """Where the wall-clock numbers came from.

    Deliberately excludes anything volatile (load average, free
    memory): two runs on the same machine should fingerprint
    identically so the comparator can tell "same box, got slower"
    from "different box, numbers incomparable".
    """
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


def build_snapshot(
    results: Mapping[str, "object"],
    config: Mapping[str, object] | None = None,
) -> dict:
    """Assemble the JSON-ready snapshot from scenario results
    (``name -> ScenarioResult``; duck-typed to stay import-light)."""
    scenarios = {}
    for name in sorted(results):
        r = results[name]
        entry = {
            "kind": r.kind,
            "params": dict(r.params),
            "wall": r.wall.as_dict(),
            "cycles": {k: r.cycles[k] for k in sorted(r.cycles)},
            "info": {k: r.info[k] for k in sorted(r.info)},
        }
        # Scenario runners may attach a serialized run profile
        # (repro.obs.diffprof.RunProfile); the comparator uses it to
        # attribute exact-gate failures.  Additive — older snapshots
        # without it still compare cleanly.
        profile = getattr(r, "profile", None)
        if profile:
            entry["profile"] = profile
        scenarios[name] = entry
    return {
        "schema": SNAPSHOT_SCHEMA,
        "created_unix": time.time(),
        "env": environment_fingerprint(),
        "config": dict(config or {}),
        "scenarios": scenarios,
    }


def next_snapshot_path(directory: str | Path) -> Path:
    """The next free ``BENCH_<n>.json`` in ``directory`` (1-based)."""
    directory = Path(directory)
    highest = 0
    if directory.exists():
        for entry in directory.iterdir():
            m = _SNAPSHOT_RE.match(entry.name)
            if m:
                highest = max(highest, int(m.group(1)))
    return directory / f"BENCH_{highest + 1}.json"


def latest_snapshot_path(directory: str | Path) -> Path | None:
    """The highest-numbered ``BENCH_<n>.json``, or None when empty."""
    directory = Path(directory)
    best: tuple[int, Path] | None = None
    if directory.exists():
        for entry in directory.iterdir():
            m = _SNAPSHOT_RE.match(entry.name)
            if m and (best is None or int(m.group(1)) > best[0]):
                best = (int(m.group(1)), entry)
    return best[1] if best else None


def write_snapshot(snapshot: dict, directory: str | Path) -> Path:
    """Write the snapshot as the next ``BENCH_<n>.json``; returns the
    path."""
    path = next_snapshot_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read one snapshot; raises ``FileNotFoundError`` /
    ``ValueError`` on missing or malformed files."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no snapshot at {path}")
    try:
        snapshot = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(snapshot, dict) or "schema" not in snapshot:
        raise ValueError(f"snapshot {path} has no 'schema' field")
    return snapshot
