"""Declarative benchmark scenarios and their runner.

A :class:`Scenario` names a *kind* (one of :data:`RUNNERS`) plus its
parameters; :func:`run_scenario` executes it ``repeats`` times inside a
fresh :func:`repro.obs.telemetry` session each time, records the
wall-clock of every repeat, and keeps the scenario's cycle metrics.

Two metric classes come out of a run:

* ``cycles`` — simulated-cycle quantities from the cycle model
  (schedule totals, stalls, load bytes...).  These are pure arithmetic
  over the configuration, identical on every machine, and the runner
  *verifies* they are identical across repeats — the comparator then
  gates them with exact equality.
* ``info`` — everything else worth recording but not gating: modeled
  latencies that depend on data-dependent token counts (BLAS rounding
  can flip a greedy argmax across platforms), measured host times, RTF.

Wall-clock is always reported as a median-of-k with a robust spread
(:class:`repro.bench.snapshot.WallStats`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.bench.snapshot import WallStats

__all__ = [
    "Scenario",
    "ScenarioResult",
    "RUNNERS",
    "default_scenarios",
    "run_scenario",
    "run_suite",
]


@dataclass(frozen=True)
class Scenario:
    """One declarative benchmark case."""

    name: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.kind not in RUNNERS:
            raise ValueError(
                f"unknown scenario kind '{self.kind}'; "
                f"expected one of {sorted(RUNNERS)}"
            )
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run produced."""

    name: str
    kind: str
    params: Mapping[str, object]
    wall: WallStats
    #: Deterministic simulated-cycle metrics (exact-match gated).
    cycles: dict[str, float]
    #: Informational metrics (recorded, never gated).
    info: dict[str, float]
    #: Optional serialized :class:`repro.obs.diffprof.RunProfile` of
    #: the scenario's traced program — embedded in the snapshot so a
    #: later exact-gate failure can be *attributed* (which blocks,
    #: engines and stall causes the cycles moved on), not just flagged.
    profile: dict | None = None


# --------------------------------------------------------------- runners
def _run_arch_sweep(
    params: Mapping[str, object], session
) -> tuple[dict, dict, dict]:
    """One (architecture, s) cell of the Table 5.1 sweep: the data-free
    cycle model's end-to-end latency report, plus the run profile of
    the scheduled pass so a later cycle drift is attributable."""
    from repro.hw.controller import LatencyModel
    from repro.obs.diffprof import profile_run

    s = int(params.get("s", 32))
    arch = str(params.get("arch", "A3"))
    lm = LatencyModel()
    report = lm.latency_report(s, arch)
    cycles = {
        "total_cycles": float(report.total_cycles),
        "schedule_cycles": float(report.schedule_cycles),
        "stall_cycles": float(report.schedule.stall_cycles),
        "load_cycles_total": float(report.schedule.load_cycles_total),
        "compute_cycles_total": float(report.schedule.compute_cycles_total),
        "io_cycles": float(
            report.input_transfer_cycles + report.output_transfer_cycles
        ),
    }
    info = {"latency_ms": report.latency_ms}
    profile = profile_run(
        lm.full_pass_program(s), arch, label=f"{arch} s={s}"
    ).as_dict()
    return cycles, info, profile


def _run_encoder_prefill(
    params: Mapping[str, object], session
) -> tuple[dict, dict, dict]:
    """Trace-executor probe of the full prefill pass: where the cycles
    go per engine under one architecture."""
    from repro import obs
    from repro.hw.controller import LatencyModel
    from repro.hw.program import program_load_bytes
    from repro.obs.diffprof import profile_run

    s = int(params.get("s", 32))
    arch = str(params.get("arch", "A3"))
    lm = LatencyModel()
    program = lm.full_pass_program(s)
    timeline = obs.record_program_metrics(program, architecture=arch)
    cycles = {
        "program_ops": float(program.num_ops),
        "program_blocks": float(len(program.blocks)),
        "load_bytes": float(program_load_bytes(program)),
        "schedule_total_cycles": session.metrics.value(
            "repro.hw.schedule.total_cycles"
        ),
        "schedule_stall_cycles": session.metrics.value(
            "repro.hw.schedule.stall_cycles"
        ),
        "trace_makespan_cycles": float(timeline.makespan),
    }
    stall_by_cause: dict[str, float] = {}
    for key, value in session.metrics.as_dict().items():
        if key.startswith("repro.hw.hbm.bytes{"):
            channel = key[key.index("{") + 1 : -1].split("=")[1]
            cycles[f"hbm_bytes_ch{channel}"] = float(value)
        elif key.startswith("repro.hw.stall.cycles{"):
            labels = dict(
                part.split("=", 1)
                for part in key[key.index("{") + 1 : -1].split(",")
            )
            cause = labels.get("cause", "unknown")
            stall_by_cause[cause] = stall_by_cause.get(cause, 0.0) + float(value)
    # Per-cause stall totals over all lanes are exact cycle metrics
    # (they partition makespan), so they ride the exact-match gate.
    for cause, total in sorted(stall_by_cause.items()):
        cycles[f"stall_{cause}_cycles"] = total
    info = {"psa_occupancy": session.metrics.value("repro.hw.psa.occupancy")}
    profile = profile_run(program, arch, label=f"{arch} s={s}").as_dict()
    return cycles, info, profile


def _run_kv_decode(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """Modeled KV-cached autoregressive decode of a fixed token budget
    (data-free, so the step count cannot drift with BLAS rounding)."""
    from repro.hw.controller import LatencyModel

    num_tokens = int(params.get("num_tokens", 8))
    s = int(params.get("s", 32))
    arch = str(params.get("arch", "A3"))
    report = LatencyModel().autoregressive_report(num_tokens, s, arch)
    cycles = {
        "decode_total_cycles": report.details["decode_total_cycles"],
        "decode_first_step_cycles": report.details["decode_first_step_cycles"],
        "decode_last_step_cycles": report.details["decode_last_step_cycles"],
        "decode_stall_cycles": report.details["decode_stall_cycles"],
    }
    info = {
        "decode_per_token_cycles": report.details["decode_per_token_cycles"],
        "decode_steady_tokens_per_s": report.details["decode_steady_tokens_per_s"],
        "latency_ms": report.latency_ms,
    }
    return cycles, info


def _run_e2e_transcribe(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """The full functional pipeline on one synthetic utterance — the
    wall-clock-heavy scenario.  Gated cycles cover only the padded
    prefill pass (data-independent); token-count-dependent results are
    informational."""
    from repro.asr.dataset import LibriSpeechLikeDataset
    from repro.asr.pipeline import AsrPipeline
    from repro.model.params import init_transformer_params

    words = int(params.get("words", 2))
    seed = int(params.get("seed", 42))
    beam = params.get("beam")
    arch = str(params.get("arch", "A3"))
    params_set = init_transformer_params(seed=seed)
    pipeline = AsrPipeline(params_set, hw_seq_len=32, architecture=arch)
    utt = LibriSpeechLikeDataset(seed=seed).generate(
        1, min_words=words, max_words=words
    )[0]
    result = pipeline.transcribe(
        utt.waveform, beam_size=int(beam) if beam else None
    )
    cycles = {
        "prefill_total_cycles": float(result.accelerator_report.total_cycles),
        "prefill_stall_cycles": float(
            result.accelerator_report.schedule.stall_cycles
        ),
        "sequence_length": float(result.sequence_length),
    }
    info = {
        "tokens": float(result.tokens.size),
        "decode_steps": result.details.get("decode_steps", 0.0),
        "e2e_ms_modeled": result.e2e_ms,
        "host_ms_measured": result.measured_host_ms,
        "decode_ms_modeled": result.decode_total_ms,
    }
    return cycles, info


def _run_streaming(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """Chunked long-form transcription through the fixed-s hardware."""
    import numpy as np

    from repro.asr.dataset import LibriSpeechLikeDataset
    from repro.asr.pipeline import AsrPipeline
    from repro.asr.streaming import StreamingTranscriber
    from repro.model.params import init_transformer_params

    seed = int(params.get("seed", 7))
    num_utts = int(params.get("num_utts", 2))
    params_set = init_transformer_params(seed=seed)
    pipeline = AsrPipeline(params_set, hw_seq_len=32)
    utts = LibriSpeechLikeDataset(seed=seed).generate(
        num_utts, min_words=2, max_words=2
    )
    waveform = np.concatenate([u.waveform for u in utts])
    transcriber = StreamingTranscriber(pipeline)
    result = transcriber.transcribe(waveform)
    cycles = {
        "chunks": float(result.num_chunks),
        "chunk_samples": float(transcriber.chunk_samples),
        "program_ops_per_chunk": result.details["program_ops_per_chunk"],
    }
    info = {
        "rtf_modeled": result.real_time_factor,
        "audio_seconds": result.audio_seconds,
        "e2e_ms_modeled": result.total_e2e_ms,
    }
    return cycles, info


def _run_serving_load(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """Multi-tenant serving sweep: the same request population replayed
    at a ladder of offered loads through the continuous-batching
    scheduler.  Virtual time is integer cycles and arrivals come from
    ``random.Random``, so every cycle-domain quantity is bit-identical
    across repeats and platforms; latency quantiles and goodput are
    reported as informational metrics."""
    from repro.serving import ServingConfig, find_saturation, sweep_offered_load

    loads = [float(x) for x in params.get("loads_rps", (0.5, 2.0, 8.0))]
    num_requests = int(params.get("num_requests", 16))
    arrival = str(params.get("arrival", "poisson"))
    seed = int(params.get("seed", 11))
    config = ServingConfig(
        s=int(params.get("s", 32)),
        architecture=str(params.get("arch", "A3")),
        max_batch=int(params.get("max_batch", 4)),
        slo_ms=float(params.get("slo_ms", 1500.0)),
    )
    sweep = sweep_offered_load(
        loads, num_requests=num_requests, arrival_kind=arrival,
        config=config, seed=seed,
    )
    cycles: dict[str, float] = {}
    info: dict[str, float] = {}
    for point in sweep.points:
        tag = f"load{point.offered_rps:g}"
        cycles[f"{tag}_device_cycles"] = float(point.device_cycles)
        cycles[f"{tag}_completed"] = float(point.completed)
        cycles[f"{tag}_preemptions"] = float(point.preemptions)
        cycles[f"{tag}_replayed_steps"] = float(point.replayed_steps)
        cycles[f"{tag}_peak_kv_bytes"] = float(point.peak_kv_bytes)
        info[f"{tag}_p50_ms"] = point.p50_ms
        info[f"{tag}_p95_ms"] = point.p95_ms
        info[f"{tag}_p99_ms"] = point.p99_ms
        info[f"{tag}_goodput_rps"] = point.goodput_rps
    knee = find_saturation(sweep.points)
    info["saturation_rps"] = knee.offered_rps if knee else 0.0
    att = sweep.attribution
    info[f"bottleneck_is_{att['bottleneck']}"] = 1.0
    info[f"psa_dominant_is_{att['psa_dominant_cause']}"] = 1.0
    return cycles, info


def _run_serving_slo(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """Instrumented serving run held to a latency SLO: lifecycle event
    counts from the vtrace recorder, sampler depth, and the SLO
    monitor's violation/alert counts.  Every gated quantity is an
    integer derived from the integer-cycle event stream, so the
    exact-match gate pins the whole observability pipeline — a change
    in scheduler event emission, sampler cadence handling or SLO
    arithmetic shows up as a bench diff."""
    from repro.obs.vtrace import VSampler, VTraceRecorder
    from repro.serving import (
        ContinuousBatchingScheduler,
        ServingConfig,
        SloObjective,
        evaluate_slo,
        make_arrival_model,
        synthesize_requests,
    )

    load = float(params.get("load_rps", 8.0))
    num_requests = int(params.get("num_requests", 16))
    arrival_kind = str(params.get("arrival", "poisson"))
    seed = int(params.get("seed", 11))
    config = ServingConfig(
        s=int(params.get("s", 32)),
        architecture=str(params.get("arch", "A3")),
        max_batch=int(params.get("max_batch", 4)),
        slo_ms=float(params.get("slo_ms", 1500.0)),
    )
    arrival = make_arrival_model(arrival_kind, load, seed=seed)
    requests = synthesize_requests(arrival, num_requests, seed=seed)
    recorder = VTraceRecorder()
    sampler = VSampler(cadence_cycles=int(params.get("sample_cycles", 100_000)))
    result = ContinuousBatchingScheduler(
        config, vtrace=recorder, sampler=sampler
    ).run(requests)
    objective = SloObjective(
        latency_ms=config.slo_ms, target=float(params.get("target", 0.9))
    )
    report = evaluate_slo(result, recorder.events, objective, recorder=recorder)

    cycles: dict[str, float] = {
        "device_end_cycles": float(result.device_end_cycles),
        "slo_violations": float(report.violated),
        "slo_alerts": float(len(report.alerts)),
        "sample_count": float(
            len(next(iter(sampler.series().values())))
            if sampler.series() else 0
        ),
    }
    for kind, count in sorted(recorder.counts().items()):
        cycles[f"events_{kind}"] = float(count)
    info = {
        "attainment": report.attainment,
        "error_budget_consumed": report.error_budget_consumed,
    }
    for name, value in report.burn.items():
        info[f"burn_{name}"] = value
    return cycles, info


def _run_serving_costs(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """Per-tenant cost attribution run: the ledger's exactly-conserved
    integer totals, gated to the cycle.  Every gated quantity derives
    from the integer-cycle event stream through largest-remainder
    apportionment, so a change to the split rule, the tenant stream,
    the scheduler's emission, or the conservation arithmetic shows up
    as a bench diff — and the conservation/rollup identities are gated
    as explicit 0/1 metrics so they can never silently regress."""
    from repro.obs.vtrace import VTraceRecorder
    from repro.serving import (
        ContinuousBatchingScheduler,
        ServingConfig,
        build_cost_ledger,
        estimate_capacity,
        make_arrival_model,
        synthesize_requests,
    )

    load = float(params.get("load_rps", 8.0))
    num_requests = int(params.get("num_requests", 16))
    seed = int(params.get("seed", 11))
    config = ServingConfig(
        s=int(params.get("s", 32)),
        architecture=str(params.get("arch", "A3")),
        max_batch=int(params.get("max_batch", 4)),
        slo_ms=float(params.get("slo_ms", 1500.0)),
    )
    arrival = make_arrival_model(
        str(params.get("arrival", "poisson")), load, seed=seed
    )
    requests = synthesize_requests(
        arrival,
        num_requests,
        seed=seed,
        tenant_classes=int(params.get("tenant_classes", 2)),
    )
    recorder = VTraceRecorder()
    result = ContinuousBatchingScheduler(config, vtrace=recorder).run(requests)
    ledger = build_cost_ledger(result, recorder.events)
    ledger.verify_conservation()
    totals = ledger.totals()

    cycles: dict[str, float] = {
        "makespan_cycles": float(totals["makespan_cycles"]),
        "attributed_cycles": float(totals["attributed_cycles"]),
        "unattributed_cycles": float(totals["unattributed_cycles"]),
        "replay_cycles": float(totals["replay_cycles"]),
        "hbm_load_bytes": float(totals["hbm_load_bytes"]),
        "conservation_exact": float(
            totals["attributed_cycles"] + totals["unattributed_cycles"]
            == totals["makespan_cycles"]
        ),
    }
    tenants = ledger.per_tenant()
    for tc in tenants:
        cycles[f"tenant{tc.tenant}_cycles"] = float(tc.attributed_cycles)
        cycles[f"tenant{tc.tenant}_hbm_bytes"] = float(tc.hbm_load_bytes)
        cycles[f"tenant{tc.tenant}_requests"] = float(tc.requests)
    cycles["tenant_rollup_exact"] = float(
        sum(tc.attributed_cycles for tc in tenants)
        == totals["attributed_cycles"]
        and sum(tc.hbm_load_bytes for tc in tenants)
        == totals["hbm_load_bytes"]
    )
    capacity = estimate_capacity(
        ledger, float(params.get("target_rps", 100.0))
    )
    info = {
        "jain_index": ledger.jain_fairness(),
        "cycles_per_request": capacity.cycles_per_request,
        "utterances_per_s_per_card": capacity.utterances_per_s_per_card,
        "cards_at_target": float(capacity.cards_needed),
    }
    return cycles, info


def _run_a4_optimized(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """The A4 pass-pipeline synthesis: exact A3 vs A4 cycles plus the
    PSA stall attribution the win comes out of.  ``synthesize_a4`` is
    ``lru_cache``d, so the search runs once per process and every
    repeat re-reads the same result — cycle metrics gate exactly."""
    from repro.hw.dse import synthesize_a4

    s = int(params.get("s", 32))
    arch = str(params.get("arch", "A3"))
    result = synthesize_a4(s=s, architecture=arch)
    cycles = {
        "a3_cycles": float(result.baseline_cycles),
        "a4_cycles": float(result.optimized_cycles),
        "cycles_saved": float(result.cycles_saved),
        "pipeline_passes": float(len(result.pipeline.names)),
        "candidates_tried": float(result.candidates_tried),
    }
    for cause in sorted(
        set(result.psa_stalls_before) | set(result.psa_stalls_after)
    ):
        cycles[f"stall_{cause}_a3"] = float(result.psa_stalls_before.get(cause, 0))
        cycles[f"stall_{cause}_a4"] = float(result.psa_stalls_after.get(cause, 0))
    info = {"improvement_pct": result.improvement_pct}
    return cycles, info


def _run_batched_serving(params: Mapping[str, object], session) -> tuple[dict, dict]:
    """Functional serving A/B: the same request population decoded
    through the continuous-batching scheduler with per-session steps
    (loop) and with the batched fabric executor.  The two runs are
    bit-identical — emitted tokens and device cycles gate exactly —
    and the wall-clock of each is reported so the batched win is
    measurable in the snapshot."""
    import numpy as np

    from repro.config import ModelConfig
    from repro.hw.accelerator import TransformerAccelerator
    from repro.model.params import init_transformer_params
    from repro.serving import (
        ContinuousBatchingScheduler,
        FunctionalExecutor,
        ServingConfig,
        UtteranceRequest,
    )

    seed = int(params.get("seed", 5))
    s = int(params.get("s", 16))
    num_requests = int(params.get("num_requests", 4))
    decode_tokens = int(params.get("decode_tokens", 6))
    model = ModelConfig(
        num_encoders=int(params.get("num_encoders", 2)),
        num_decoders=int(params.get("num_decoders", 2)),
    )
    weights = init_transformer_params(model, seed=seed)
    rng = np.random.default_rng(seed)
    feats = {
        i: rng.normal(size=(s - 2, model.d_model)).astype(np.float32)
        for i in range(num_requests)
    }
    reqs = [
        UtteranceRequest(i, 0.001 * i, decode_tokens)
        for i in range(num_requests)
    ]
    scfg = ServingConfig(
        s=s, max_batch=int(params.get("max_batch", 4)), slo_ms=1e9
    )

    def run_once(batched: bool):
        accel = TransformerAccelerator(weights, hw_seq_len=s)
        ex = FunctionalExecutor(
            scfg, accel, lambda r: feats[r.request_id], batched_steps=batched
        )
        start = time.perf_counter()
        result = ContinuousBatchingScheduler(scfg, ex).run(list(reqs))
        wall_ms = (time.perf_counter() - start) * 1e3
        return result, ex.emitted, wall_ms

    loop_result, loop_tokens, loop_ms = run_once(False)
    bat_result, bat_tokens, bat_ms = run_once(True)
    identical = loop_tokens == bat_tokens
    cycles = {
        "requests": float(num_requests),
        "decode_tokens_each": float(decode_tokens),
        "device_cycles": float(bat_result.device_end_cycles),
        "decode_iterations": float(bat_result.decode_iterations),
        "tokens_bit_identical": float(identical),
        "device_cycles_match": float(
            bat_result.device_end_cycles == loop_result.device_end_cycles
        ),
    }
    info = {
        "loop_wall_ms": loop_ms,
        "batched_wall_ms": bat_ms,
        "batched_speedup": loop_ms / bat_ms if bat_ms > 0 else 0.0,
        "peak_batch": float(bat_result.peak_batch),
    }
    return cycles, info


#: kind -> runner(params, telemetry session) -> (cycles, info) or
#: (cycles, info, profile) — the optional third element is a
#: serialized :class:`repro.obs.diffprof.RunProfile` embedded in the
#: snapshot for differential attribution of exact-gate failures.
RUNNERS: dict[str, Callable[[Mapping[str, object], object], tuple]] = {
    "arch_sweep": _run_arch_sweep,
    "encoder_prefill": _run_encoder_prefill,
    "kv_decode": _run_kv_decode,
    "e2e_transcribe": _run_e2e_transcribe,
    "streaming": _run_streaming,
    "serving_load": _run_serving_load,
    "serving_slo": _run_serving_slo,
    "serving_costs": _run_serving_costs,
    "a4_optimized": _run_a4_optimized,
    "batched_serving": _run_batched_serving,
}


def default_scenarios(quick: bool = False, repeats: int = 3) -> list[Scenario]:
    """The standard suite: the A1/A2/A3 × s sweep plus the prefill
    probe, fixed-budget KV decode, one functional E2E utterance and one
    streaming run.  ``quick`` trims to one repeat and drops the
    functional scenarios (useful in tests and smoke runs)."""
    if quick:
        repeats = 1
    scenarios = [
        Scenario(
            f"sweep_{arch.lower()}_s{s}",
            "arch_sweep",
            {"arch": arch, "s": s},
            repeats=repeats,
        )
        for arch in ("A1", "A2", "A3")
        for s in ((32,) if quick else (4, 32))
    ]
    scenarios += [
        Scenario("encoder_prefill_a3_s32", "encoder_prefill",
                 {"arch": "A3", "s": 32}, repeats=repeats),
        Scenario("kv_decode_a3_t8", "kv_decode",
                 {"arch": "A3", "s": 32, "num_tokens": 8}, repeats=repeats),
        Scenario(
            "serving_load_poisson",
            "serving_load",
            {
                "arrival": "poisson",
                "loads_rps": (0.5, 2.0, 8.0),
                "num_requests": 8 if quick else 16,
                "max_batch": 4,
                "seed": 11,
            },
            repeats=repeats,
        ),
    ]
    if not quick:
        scenarios += [
            Scenario("e2e_greedy_w2", "e2e_transcribe",
                     {"words": 2, "seed": 42}, repeats=repeats),
            Scenario("streaming_2utt", "streaming",
                     {"seed": 7, "num_utts": 2}, repeats=repeats),
            Scenario("a4_optimized_s32", "a4_optimized",
                     {"arch": "A3", "s": 32}, repeats=repeats),
            Scenario(
                "batched_serving_b4",
                "batched_serving",
                {"s": 16, "num_requests": 4, "decode_tokens": 6, "seed": 5},
                repeats=repeats,
            ),
            Scenario(
                "serving_slo_poisson",
                "serving_slo",
                {
                    "arrival": "poisson",
                    "load_rps": 8.0,
                    "num_requests": 16,
                    "max_batch": 4,
                    "slo_ms": 1500.0,
                    "target": 0.9,
                    "seed": 11,
                },
                repeats=repeats,
            ),
            Scenario(
                "serving_costs_2tenants",
                "serving_costs",
                {
                    "arrival": "poisson",
                    "load_rps": 8.0,
                    "num_requests": 16,
                    "max_batch": 4,
                    "slo_ms": 1500.0,
                    "tenant_classes": 2,
                    "seed": 11,
                },
                repeats=repeats,
            ),
        ]
    return scenarios


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario ``repeats`` times under telemetry.

    The cycle metrics must come out identical on every repeat — the
    simulator is deterministic — and the runner enforces that, so a
    nondeterministic metric can never silently reach the exact-match
    comparator gate.
    """
    from repro import obs

    samples: list[float] = []
    cycles: dict[str, float] | None = None
    info: dict[str, float] = {}
    profile: dict | None = None
    seen_profile = False
    for _ in range(scenario.repeats):
        with obs.telemetry() as session:
            start = time.perf_counter()
            out = RUNNERS[scenario.kind](scenario.params, session)
            samples.append((time.perf_counter() - start) * 1e3)
        run_cycles, run_info = out[0], out[1]
        run_profile = out[2] if len(out) > 2 else None
        if cycles is not None and run_cycles != cycles:
            changed = sorted(
                k for k in set(cycles) | set(run_cycles)
                if cycles.get(k) != run_cycles.get(k)
            )
            raise RuntimeError(
                f"scenario '{scenario.name}' produced nondeterministic "
                f"cycle metrics across repeats: {changed}"
            )
        # The embedded run profile rides the same determinism contract
        # as the cycle metrics: it feeds the exact-delta attribution,
        # so a repeat-to-repeat wobble must fail loudly here.
        if seen_profile and run_profile != profile:
            raise RuntimeError(
                f"scenario '{scenario.name}' produced a nondeterministic "
                f"run profile across repeats"
            )
        cycles = run_cycles
        info = run_info
        profile = run_profile
        seen_profile = True
    assert cycles is not None
    return ScenarioResult(
        name=scenario.name,
        kind=scenario.kind,
        params=dict(scenario.params),
        wall=WallStats.from_samples(samples),
        cycles=cycles,
        info=info,
        profile=profile,
    )


def run_suite(scenarios: list[Scenario] | None = None) -> dict[str, ScenarioResult]:
    """Run a scenario list (default: :func:`default_scenarios`)."""
    scenarios = default_scenarios() if scenarios is None else scenarios
    names = [sc.name for sc in scenarios]
    if len(set(names)) != len(names):
        raise ValueError("scenario names must be unique")
    return {sc.name: run_scenario(sc) for sc in scenarios}
