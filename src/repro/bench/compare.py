"""Snapshot comparator: exact-match gating for cycle metrics,
noise-aware thresholds for wall-clock.

The two metric classes fail differently by design:

* **Cycle metrics** are pure arithmetic over the configuration — any
  change is a real change to the modeled hardware (or a bug), so the
  gate is exact equality and a mismatch is a hard failure.
* **Wall-clock medians** carry scheduler noise, turbo states and
  machine differences, so a drift only *warns* unless it exceeds a
  threshold that accounts for both the configured tolerance and the
  measured spread of the two runs — and even then it stays a warning
  unless ``fail_on_wall`` is set (CI compares cross-machine, where
  wall numbers are indicative at best).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.bench.snapshot import SNAPSHOT_SCHEMA

__all__ = ["Finding", "ComparisonReport", "compare_snapshots"]

#: Spread multiplier: a drift below ``_SIGMAS`` robust standard
#: deviations of either run is indistinguishable from noise.
_SIGMAS = 4.0


@dataclass(frozen=True)
class Finding:
    """One comparator observation."""

    severity: str  # "fail" | "warn" | "info"
    scenario: str
    metric: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in ("fail", "warn", "info"):
            raise ValueError(f"unknown severity '{self.severity}'")


@dataclass
class ComparisonReport:
    """All findings of one baseline-vs-current diff."""

    baseline_env: dict = field(default_factory=dict)
    current_env: dict = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    def add(self, severity: str, scenario: str, metric: str, message: str) -> None:
        self.findings.append(Finding(severity, scenario, metric, message))

    @property
    def failures(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "fail"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def passed(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines: list[str] = []
        if self.baseline_env and self.current_env:
            same = self.baseline_env == self.current_env
            lines.append(
                "environment: "
                + ("same fingerprint as baseline"
                   if same else "DIFFERS from baseline (wall-clock drift "
                                "is expected; cycle counts must still match)")
            )
        order = {"fail": 0, "warn": 1, "info": 2}
        for f in sorted(self.findings, key=lambda f: (order[f.severity], f.scenario)):
            lines.append(
                f"[{f.severity.upper():4s}] {f.scenario} :: {f.metric}: {f.message}"
            )
        lines.append(
            f"result: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.failures)} failure(s), {len(self.warnings)} warning(s))"
        )
        return "\n".join(lines)


def _attach_attribution(
    report: ComparisonReport,
    scenario: str,
    base_scenario: Mapping[str, object],
    cur_scenario: Mapping[str, object],
) -> None:
    """When a scenario's exact cycle gate failed and both snapshots
    embedded its run profile, append the differential-profiler verdict:
    the makespan delta and the top (block, engine, cause) triples the
    cycles moved on, so the failure self-explains."""
    base_prof = base_scenario.get("profile")
    cur_prof = cur_scenario.get("profile")
    if not base_prof or not cur_prof:
        return
    from repro.bench.delta import attribution_lines, diff_profile_dicts

    try:
        waterfall = diff_profile_dicts(base_prof, cur_prof)
    except ValueError as exc:
        report.add("info", scenario, "attribution",
                   f"embedded profiles not diffable: {exc}")
        return
    if waterfall.is_zero:
        report.add("info", scenario, "attribution",
                   "embedded profiles are cycle-identical (the drifted "
                   "metric is outside the traced schedule)")
        return
    report.add("info", scenario, "attribution",
               "cycle delta attribution: "
               + "; ".join(attribution_lines(waterfall)))


def _compare_cycles(
    report: ComparisonReport,
    scenario: str,
    base: Mapping[str, float],
    cur: Mapping[str, float],
) -> None:
    for metric in sorted(set(base) | set(cur)):
        if metric not in cur:
            report.add("fail", scenario, metric,
                       f"cycle metric removed (baseline {base[metric]:g})")
            continue
        if metric not in base:
            report.add("warn", scenario, metric,
                       f"new cycle metric (current {cur[metric]:g}); "
                       f"refresh the baseline to start gating it")
            continue
        b, c = float(base[metric]), float(cur[metric])
        if b != c:
            rel = (c - b) / b if b else math.inf
            report.add(
                "fail", scenario, metric,
                f"cycle count changed: {b:g} -> {c:g} ({rel:+.4%})",
            )


def _compare_wall(
    report: ComparisonReport,
    scenario: str,
    base: Mapping[str, object],
    cur: Mapping[str, object],
    tolerance: float,
    min_wall_ms: float,
    fail_on_wall: bool,
) -> None:
    b_invalid = int(base.get("invalid_samples", 0) or 0)
    c_invalid = int(cur.get("invalid_samples", 0) or 0)
    if b_invalid:
        report.add("warn", scenario, "wall",
                   f"baseline has {b_invalid} non-finite wall sample(s)")
    if c_invalid:
        report.add("warn", scenario, "wall",
                   f"current run has {c_invalid} non-finite wall sample(s)")

    b_med = float(base.get("median_ms", math.nan))
    c_med = float(cur.get("median_ms", math.nan))
    if not math.isfinite(b_med) or not math.isfinite(c_med):
        which = "baseline" if not math.isfinite(b_med) else "current"
        report.add("warn", scenario, "wall",
                   f"{which} wall median is not finite; drift not comparable")
        return

    b_spread = float(base.get("spread_ms", 0.0) or 0.0)
    c_spread = float(cur.get("spread_ms", 0.0) or 0.0)
    if not math.isfinite(b_spread):
        b_spread = 0.0
    if not math.isfinite(c_spread):
        c_spread = 0.0
    # A drift must clear the relative tolerance, the noise floor of
    # both runs, and an absolute floor (sub-millisecond scenarios are
    # all noise) before it means anything.
    threshold = max(
        tolerance * b_med, _SIGMAS * max(b_spread, c_spread), min_wall_ms
    )
    delta = c_med - b_med
    desc = (f"median {b_med:.2f} ms -> {c_med:.2f} ms "
            f"({delta:+.2f} ms, threshold {threshold:.2f} ms)")
    if delta > threshold:
        report.add("fail" if fail_on_wall else "warn", scenario, "wall",
                   f"wall-clock regression: {desc}")
    elif delta < -threshold:
        report.add("info", scenario, "wall", f"wall-clock improvement: {desc}")


def compare_snapshots(
    baseline: dict,
    current: dict,
    wall_tolerance: float = 0.25,
    min_wall_ms: float = 1.0,
    fail_on_wall: bool = False,
) -> ComparisonReport:
    """Diff ``current`` against ``baseline``.

    ``wall_tolerance`` is the fractional wall-clock drift considered
    meaningful (before the spread-based noise floor); ``min_wall_ms``
    an absolute floor below which drift is ignored entirely.
    """
    if wall_tolerance < 0 or min_wall_ms < 0:
        raise ValueError("tolerances must be non-negative")
    report = ComparisonReport(
        baseline_env=dict(baseline.get("env", {})),
        current_env=dict(current.get("env", {})),
    )
    b_schema = baseline.get("schema")
    c_schema = current.get("schema")
    if b_schema != SNAPSHOT_SCHEMA or c_schema != SNAPSHOT_SCHEMA:
        report.add(
            "fail", "-", "schema",
            f"schema mismatch: baseline '{b_schema}', current '{c_schema}', "
            f"comparator speaks '{SNAPSHOT_SCHEMA}'",
        )
        return report

    b_scenarios = baseline.get("scenarios", {})
    c_scenarios = current.get("scenarios", {})
    for name in sorted(set(b_scenarios) | set(c_scenarios)):
        if name not in c_scenarios:
            report.add("fail", name, "-",
                       "scenario present in baseline but missing from current run")
            continue
        if name not in b_scenarios:
            report.add("warn", name, "-",
                       "new scenario (not in baseline); refresh the baseline "
                       "to start gating it")
            continue
        failures_before = len(report.failures)
        _compare_cycles(
            report, name,
            b_scenarios[name].get("cycles", {}),
            c_scenarios[name].get("cycles", {}),
        )
        if len(report.failures) > failures_before:
            _attach_attribution(
                report, name, b_scenarios[name], c_scenarios[name]
            )
        _compare_wall(
            report, name,
            b_scenarios[name].get("wall", {}),
            c_scenarios[name].get("wall", {}),
            wall_tolerance, min_wall_ms, fail_on_wall,
        )
    return report
