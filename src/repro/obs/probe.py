"""Deep accelerator probes: derive per-engine metrics from a lowered
block program via the trace executor.

The functional executor records *what ran* (op counts, bytes streamed);
this probe records *where the cycles went*: busy cycles per engine
lane, PSA occupancy, HBM bytes per channel and the schedule totals —
the quantities Table 5.1 / Fig 4.11 reason about.  It runs the trace
executor once, so it is used by ``repro-asr profile`` rather than on
every transcription.

Hardware imports stay inside the functions so ``repro.obs`` remains a
leaf package (the hw layer imports it for instrumentation).
"""

from __future__ import annotations

from repro.obs import metrics as _metrics

__all__ = ["record_program_metrics"]


def record_program_metrics(
    program,
    architecture: str = "A3",
    registry: _metrics.MetricsRegistry | None = None,
    block_overhead: int | None = None,
):
    """Trace one :class:`repro.hw.program.BlockProgram` and record:

    * ``repro.hw.engine.busy_cycles{engine=...}`` — per-lane busy cycles
    * ``repro.hw.psa.occupancy`` — mean busy fraction of the PSA lanes
    * ``repro.hw.hbm.bytes{channel=...}`` — weight bytes per HBM channel
      under the architecture's actual load placement
    * ``repro.hw.schedule.total_cycles`` / ``.stall_cycles``
    * ``repro.hw.stall.cycles{engine=,cause=}`` — the stall
      classifier's per-cause account of every idle cycle
      (:func:`repro.hw.introspect.classify_stalls`)
    * ``repro.hw.program.trace_ops{kind=...}`` — the trace executor's
      op account, comparable against the functional executor's
      ``repro.hw.program.ops`` counters

    Returns the traced :class:`repro.hw.trace.Timeline` (also the input
    to the Chrome-trace exporter), or None when telemetry is disabled.
    """
    from repro.hw.program import (
        program_hbm_bytes,
        program_op_counts,
        trace_program_with_schedule,
    )

    reg = registry if registry is not None else _metrics.registry()
    if not reg.enabled:
        return None
    if block_overhead is None:
        block_overhead = program.fabric.calibration.block_overhead_cycles

    # One scheduling pass yields both the op-level timeline and the
    # block-schedule totals (it used to run trace_program *and*
    # schedule_program, scheduling the same blocks twice).
    timeline, sched = trace_program_with_schedule(
        program, architecture, block_overhead
    )
    psa_busy = 0.0
    psa_lanes = 0
    for engine in timeline.engines():
        busy = timeline.busy_time(engine)
        reg.gauge("repro.hw.engine.busy_cycles", engine=engine).set(busy)
        if ".psa" in engine:
            psa_busy += busy
            psa_lanes += 1
    makespan = timeline.makespan
    if psa_lanes and makespan > 0:
        reg.gauge("repro.hw.psa.occupancy").set(psa_busy / (psa_lanes * makespan))

    for channel, num_bytes in program_hbm_bytes(program, architecture).items():
        reg.gauge("repro.hw.hbm.bytes", channel=str(channel)).set(num_bytes)

    reg.gauge("repro.hw.schedule.total_cycles").set(sched.total_cycles)
    reg.gauge("repro.hw.schedule.stall_cycles").set(sched.stall_cycles)

    # Per-cause stall attribution, reusing the scheduling pass above.
    from repro.hw.introspect import classify_stalls

    stall_report = classify_stalls(
        program, architecture, block_overhead, timeline=timeline, sched=sched
    )
    for engine, breakdown in stall_report.engines.items():
        for cause, cycles in breakdown.stalls.items():
            if cycles > 0:
                reg.gauge(
                    "repro.hw.stall.cycles", engine=engine, cause=cause
                ).set(cycles)
        if breakdown.no_work_cycles > 0:
            reg.gauge(
                "repro.hw.stall.cycles", engine=engine, cause="no_work"
            ).set(breakdown.no_work_cycles)

    for kind, count in program_op_counts(program).items():
        reg.gauge("repro.hw.program.trace_ops", kind=kind).set(count)
    return timeline
