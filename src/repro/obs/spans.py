"""Span tracing: nested wall-clock intervals over the host pipeline.

A :class:`Tracer` records :class:`SpanRecord` intervals via the
``with tracer().span("asr.transcribe"):`` context manager.  Spans nest
per thread (the record carries its depth and thread id), so the
exporter can rebuild the host-side flame graph next to the simulated
accelerator lanes in one Chrome trace.

Like the metrics registry, the process-wide default is a no-op
:class:`NullTracer`; a real tracer is installed for the duration of a
profiling run (see :func:`repro.obs.telemetry`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "tracer",
    "set_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, in microseconds from the tracer's epoch."""

    name: str
    start_us: float
    duration_us: float
    depth: int
    thread_id: int
    attrs: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


class Span:
    """The live handle yielded inside a ``with tracer.span(...)`` body."""

    __slots__ = ("name", "attrs", "_start", "_depth")

    def __init__(self, name: str, attrs: dict, start: float, depth: int) -> None:
        self.name = name
        self.attrs = attrs
        self._start = start
        self._depth = depth

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span record."""
        self.attrs.update(attrs)


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._span = Span(name, attrs, 0.0, 0)

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        self._span._depth = len(stack)
        stack.append(self._span)
        self._span._start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        span = self._span
        self._tracer._stack().pop()
        attrs = dict(span.attrs)
        if exc_type is not None:
            # Failed spans stay distinguishable in every export: the
            # exception propagates (we return None), but the record
            # carries what killed the body.
            attrs["error"] = True
            attrs["exc_type"] = exc_type.__name__
        self._tracer._record(
            SpanRecord(
                name=span.name,
                start_us=(span._start - self._tracer.epoch) * 1e6,
                duration_us=(end - span._start) * 1e6,
                depth=span._depth,
                thread_id=threading.get_ident(),
                attrs=attrs,
            )
        )


class Tracer:
    """Collects spans; thread-safe, with a per-thread nesting stack."""

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a nested span; completed on context exit."""
        return _SpanContext(self, name, attrs)

    def record_span(
        self,
        name: str,
        start_us: float,
        duration_us: float,
        thread_id: int = 0,
        depth: int = 0,
        **attrs: object,
    ) -> None:
        """Record a span with explicit timestamps.

        Simulators operating on a *virtual* clock (the serving
        scheduler) use this to emit per-request lifecycle spans whose
        times are simulated microseconds rather than host wall-clock;
        the exporter treats them like any other record.
        """
        if duration_us < 0:
            raise ValueError("duration_us must be non-negative")
        self._record(
            SpanRecord(
                name=name,
                start_us=float(start_us),
                duration_us=float(duration_us),
                depth=depth,
                thread_id=thread_id,
                attrs=dict(attrs),
            )
        )

    @property
    def records(self) -> list[SpanRecord]:
        """Completed spans in completion order (children before parents)."""
        with self._lock:
            return list(self._records)


class _NullSpan(Span):
    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass


class _NullSpanContext:
    """Reentrant shared no-op context manager."""

    __slots__ = ()
    _NULL_SPAN = _NullSpan("null", {}, 0.0, 0)

    def __enter__(self) -> Span:
        return self._NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The disabled default: spans cost one call and no state."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs: object) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN_CONTEXT

    def record_span(self, name, start_us, duration_us, thread_id=0, depth=0, **attrs):  # type: ignore[override]
        pass


NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def tracer() -> Tracer:
    """The process-wide active tracer (a no-op unless installed)."""
    return _active


def set_tracer(tr: Tracer | None) -> Tracer:
    """Install ``tr`` (None restores the no-op default); returns the
    previously active tracer."""
    global _active
    previous = _active
    _active = tr if tr is not None else NULL_TRACER
    return previous
