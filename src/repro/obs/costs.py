"""Per-request / per-tenant cost attribution primitives.

The serving scheduler is a shared device: prefill passes serve one
request, but a continuous-batching decode iteration streams each
decoder's weight panels from HBM *once for the whole batch* — the
amortization the serving layer exists for.  Any per-request cost
readout therefore needs an apportionment rule, and it must be exact:
the bench harness gates cycle totals to the integer, so attributed
shares that round away even one cycle would break the conservation
invariant the ledger is built on.

The rule used throughout is the **largest-remainder (Hamilton)
split** (:func:`largest_remainder_split`): each batch member is
weighted by what its decode step would cost stand-alone
(:meth:`repro.hw.controller.LatencyModel.decode_step_cycles`), the
scheduled iteration total is divided proportionally in exact integer
arithmetic, and the leftover cycles go to the largest fractional
remainders (ties to the lowest index).  Shares always sum exactly to
the total being split.

A :class:`CostLedger` holds one :class:`RequestCost` per request and
the run-level account, under the PR-5-style conservation invariant

    sum(attributed cycles) + unattributed (idle) == makespan

checked in exact integer arithmetic by :meth:`CostLedger.
verify_conservation`.  :meth:`CostLedger.per_tenant` rolls requests up
to :class:`TenantCost` totals with fairness readouts (goodput share,
dominant-resource share, Jain index).

:func:`cost_flow_events` correlates the layers in the merged Perfetto
trace: flow arrows from each request's lifecycle lane (pid 3, see
:func:`repro.obs.vtrace.request_track_events`) to the device-lane
slices it paid for (pid 1, :func:`repro.obs.export.chrome_trace`), so
an SLO violation drills down to the exact device work that request
was charged.

The ledger is *built* from a serving run by
:func:`repro.serving.accounting.build_cost_ledger`; this module keeps
the arithmetic and trace plumbing dependency-light so the ``hw`` layer
can borrow :func:`largest_remainder_split` without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.export import ACCEL_PID, engine_lane_tids
from repro.obs.vtrace import (
    REQUEST_PID,
    VEvent,
    _sorted_events,
    device_timeline,
    request_lane_tids,
)

__all__ = [
    "largest_remainder_split",
    "jain_index",
    "RequestCost",
    "TenantCost",
    "CostLedger",
    "cost_flow_events",
]


def largest_remainder_split(total: int, weights: Sequence[int]) -> list[int]:
    """Split an integer ``total`` proportionally to ``weights`` so the
    shares sum *exactly* to ``total`` (largest-remainder method).

    Pure integer arithmetic: member ``i`` gets
    ``floor(total * w_i / W)`` plus one of the leftover units, handed
    out by descending remainder ``(total * w_i) mod W`` with ties to
    the lowest index — deterministic and drift-free.  All-zero weights
    degrade to an equal split.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        raise ValueError("weights must be non-empty")
    w = [int(x) for x in weights]
    if any(x < 0 for x in w):
        raise ValueError("weights must be non-negative")
    total = int(total)
    wsum = sum(w)
    if wsum == 0:
        w = [1] * len(w)
        wsum = len(w)
    shares = [total * x // wsum for x in w]
    remainders = [total * x % wsum for x in w]
    leftover = total - sum(shares)
    for i in sorted(range(len(w)), key=lambda i: (-remainders[i], i))[:leftover]:
        shares[i] += 1
    return shares


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over
    non-negative allocations: 1.0 for a perfectly even split, ``1/n``
    when one member holds everything.  An all-zero allocation is
    vacuously fair (1.0)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("values must be non-empty")
    if any(v < 0 for v in vals):
        raise ValueError("values must be non-negative")
    total = sum(vals)
    if total == 0:
        return 1.0
    return total * total / (len(vals) * sum(v * v for v in vals))


@dataclass
class RequestCost:
    """Everything one request was charged, in exact integer units."""

    request_id: int
    tenant: int = 0
    #: Prefill passes this request triggered (re-prefills included).
    prefill_cycles: int = 0
    #: Largest-remainder shares of every decode iteration it joined
    #: (replayed iterations included — replay is a cost, not a freebie).
    decode_cycles: int = 0
    #: The preemption tax inside the above: re-prefill passes plus the
    #: shares of iterations spent replaying previously-decoded steps.
    replay_cycles: int = 0
    #: Admission-pool waiting (arrival->admit plus preempt->readmit).
    #: Queueing overlaps device work for other requests, so it is *not*
    #: part of the attributed-cycle conservation sum.
    queue_cycles: int = 0
    #: HBM weight-stream bytes: full prefill programs, plus the
    #: apportioned share of each (shared) decode iteration's stream.
    hbm_load_bytes: int = 0
    #: KV-cache residency integral: modeled resident bytes x cycles
    #: held, from admission to completion/preemption.
    kv_byte_cycles: int = 0
    preemptions: int = 0
    completed: bool = False
    rejected: bool = False
    #: Completed within the latency SLO (goodput numerator).
    good: bool = False
    e2e_ms: float | None = None

    @property
    def attributed_cycles(self) -> int:
        """Device cycles this request is charged for (prefill + decode
        shares); the quantity the conservation invariant sums."""
        return self.prefill_cycles + self.decode_cycles


@dataclass
class TenantCost:
    """One tenant's rollup of :class:`RequestCost` records."""

    tenant: int
    requests: int = 0
    completed: int = 0
    good: int = 0
    rejected: int = 0
    prefill_cycles: int = 0
    decode_cycles: int = 0
    replay_cycles: int = 0
    queue_cycles: int = 0
    hbm_load_bytes: int = 0
    kv_byte_cycles: int = 0

    @property
    def attributed_cycles(self) -> int:
        return self.prefill_cycles + self.decode_cycles

    def add(self, rc: RequestCost) -> None:
        self.requests += 1
        self.completed += int(rc.completed)
        self.good += int(rc.good)
        self.rejected += int(rc.rejected)
        self.prefill_cycles += rc.prefill_cycles
        self.decode_cycles += rc.decode_cycles
        self.replay_cycles += rc.replay_cycles
        self.queue_cycles += rc.queue_cycles
        self.hbm_load_bytes += rc.hbm_load_bytes
        self.kv_byte_cycles += rc.kv_byte_cycles


#: Resources a tenant can be dominant in (DRF-style share accounting).
_RESOURCES = ("attributed_cycles", "hbm_load_bytes", "kv_byte_cycles")


@dataclass
class CostLedger:
    """The full cost account of one serving run.

    ``unattributed_cycles`` is the device's idle time — cycles no
    request paid for — so the conservation invariant is exactly the
    scheduler's own device-time account:

        sum(rc.attributed_cycles) + unattributed_cycles == makespan
    """

    requests: list[RequestCost]
    #: Device time at the last scheduler event, cycles.
    makespan_cycles: int
    #: Idle cycles (device waiting for arrivals) — attributable to no
    #: request by construction.
    unattributed_cycles: int
    clock_hz: float
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------ sums
    @property
    def attributed_cycles(self) -> int:
        return sum(rc.attributed_cycles for rc in self.requests)

    def request(self, request_id: int) -> RequestCost:
        for rc in self.requests:
            if rc.request_id == request_id:
                return rc
        raise KeyError(f"no cost record for request {request_id}")

    def totals(self) -> dict[str, int]:
        """Run-level integer totals across all requests."""
        return {
            "makespan_cycles": self.makespan_cycles,
            "attributed_cycles": self.attributed_cycles,
            "unattributed_cycles": self.unattributed_cycles,
            "prefill_cycles": sum(rc.prefill_cycles for rc in self.requests),
            "decode_cycles": sum(rc.decode_cycles for rc in self.requests),
            "replay_cycles": sum(rc.replay_cycles for rc in self.requests),
            "queue_cycles": sum(rc.queue_cycles for rc in self.requests),
            "hbm_load_bytes": sum(rc.hbm_load_bytes for rc in self.requests),
            "kv_byte_cycles": sum(rc.kv_byte_cycles for rc in self.requests),
        }

    # --------------------------------------------------- conservation
    def verify_conservation(self) -> None:
        """Exact-integer conservation: every device cycle is either
        attributed to exactly one request or declared idle.  Raises
        :class:`ValueError` with the full account on any mismatch."""
        attributed = self.attributed_cycles
        if attributed + self.unattributed_cycles != self.makespan_cycles:
            raise ValueError(
                "cost-attribution conservation violated: "
                f"attributed={attributed} + "
                f"unattributed={self.unattributed_cycles} != "
                f"makespan={self.makespan_cycles} "
                f"(off by {attributed + self.unattributed_cycles - self.makespan_cycles})"
            )

    # -------------------------------------------------------- tenants
    def per_tenant(self) -> list[TenantCost]:
        """Rollup to per-tenant totals, sorted by tenant id.  The
        tenant sums reproduce the global totals exactly because every
        request belongs to exactly one tenant."""
        by: dict[int, TenantCost] = {}
        for rc in self.requests:
            tc = by.get(rc.tenant)
            if tc is None:
                tc = by[rc.tenant] = TenantCost(tenant=rc.tenant)
            tc.add(rc)
        return [by[t] for t in sorted(by)]

    def goodput_shares(self) -> dict[int, float]:
        """Each tenant's share of SLO-meeting completions."""
        tenants = self.per_tenant()
        total_good = sum(tc.good for tc in tenants)
        if total_good == 0:
            return {tc.tenant: 0.0 for tc in tenants}
        return {tc.tenant: tc.good / total_good for tc in tenants}

    def dominant_resource_shares(self) -> dict[int, dict]:
        """DRF-style readout: each tenant's largest share across the
        accounted resources (cycles, HBM bytes, KV byte-cycles)."""
        tenants = self.per_tenant()
        totals = {
            res: sum(getattr(tc, res) for tc in tenants) for res in _RESOURCES
        }
        out: dict[int, dict] = {}
        for tc in tenants:
            best_res, best_share = _RESOURCES[0], 0.0
            for res in _RESOURCES:
                share = getattr(tc, res) / totals[res] if totals[res] else 0.0
                if share > best_share:
                    best_res, best_share = res, share
            out[tc.tenant] = {"resource": best_res, "share": best_share}
        return out

    def jain_fairness(self) -> float:
        """Jain index over per-tenant attributed cycles."""
        tenants = self.per_tenant()
        if not tenants:
            return 1.0
        return jain_index([tc.attributed_cycles for tc in tenants])

    # --------------------------------------------------------- export
    def as_dict(self) -> dict:
        """JSON-ready form: totals, per-request and per-tenant rows,
        fairness readouts.  Integer fields stay integers."""
        return {
            "totals": self.totals(),
            "clock_hz": self.clock_hz,
            "metadata": dict(self.metadata),
            "requests": [
                {
                    "request_id": rc.request_id,
                    "tenant": rc.tenant,
                    "prefill_cycles": rc.prefill_cycles,
                    "decode_cycles": rc.decode_cycles,
                    "replay_cycles": rc.replay_cycles,
                    "queue_cycles": rc.queue_cycles,
                    "hbm_load_bytes": rc.hbm_load_bytes,
                    "kv_byte_cycles": rc.kv_byte_cycles,
                    "preemptions": rc.preemptions,
                    "completed": rc.completed,
                    "rejected": rc.rejected,
                    "good": rc.good,
                    "e2e_ms": rc.e2e_ms,
                }
                for rc in self.requests
            ],
            "tenants": [
                {
                    "tenant": tc.tenant,
                    "requests": tc.requests,
                    "completed": tc.completed,
                    "good": tc.good,
                    "rejected": tc.rejected,
                    "attributed_cycles": tc.attributed_cycles,
                    "prefill_cycles": tc.prefill_cycles,
                    "decode_cycles": tc.decode_cycles,
                    "replay_cycles": tc.replay_cycles,
                    "queue_cycles": tc.queue_cycles,
                    "hbm_load_bytes": tc.hbm_load_bytes,
                    "kv_byte_cycles": tc.kv_byte_cycles,
                }
                for tc in self.per_tenant()
            ],
            "fairness": {
                "jain_index": self.jain_fairness(),
                "goodput_shares": {
                    str(t): s for t, s in self.goodput_shares().items()
                },
                "dominant_resource": {
                    str(t): d
                    for t, d in self.dominant_resource_shares().items()
                },
            },
        }


# ------------------------------------------------- Perfetto flow events
def cost_flow_events(
    events: list[VEvent],
    clock_mhz: float = 300.0,
    max_decode_flows: int = 2,
) -> list[dict]:
    """Chrome-trace flow events binding each request's lifecycle lane
    to the device-lane slices it paid for.

    For every prefill pass, a flow arrow runs from the request's
    ``prefill`` slice on its pid-3 lane to the matching
    ``device.prefill`` slice; for the first ``max_decode_flows`` decode
    iterations a request joins, an arrow runs from its ``decode`` slice
    to the ``device.decode`` slice it shared (capped so wide batches
    don't bury the trace in arrows).  Merge the result into
    :func:`repro.obs.export.chrome_trace` as ``extra_events`` together
    with :func:`repro.obs.vtrace.request_track_events` — both are
    scaled by the same ``clock_mhz``, and the lane/tid assignment is
    shared with the exporters (:func:`repro.obs.export.
    engine_lane_tids`, :func:`repro.obs.vtrace.request_lane_tids`), so
    the arrows bind to the right slices.

    Decode membership comes from the ``request_ids`` attr on
    ``decode_iter`` events (event schema >= 2); older streams simply
    yield prefill flows only.
    """
    if clock_mhz <= 0:
        raise ValueError("clock_mhz must be positive")
    scale = 1.0 / clock_mhz
    ordered = _sorted_events(events)
    req_tid = request_lane_tids(events)
    dev_tid = engine_lane_tids(device_timeline(events).engines())
    out: list[dict] = []
    flow_id = 0
    decode_flows: dict[int, int] = {}

    def arrow(rid: int, cycle: int, engine: str, kind: str) -> None:
        nonlocal flow_id
        flow_id += 1
        name = f"cost:r{rid}:{kind}"
        common = {"name": name, "cat": "serving", "id": flow_id,
                  "ts": cycle * scale}
        out.append({**common, "ph": "s", "pid": REQUEST_PID,
                    "tid": req_tid[rid], "args": {"request_id": rid}})
        out.append({**common, "ph": "f", "bp": "e", "pid": ACCEL_PID,
                    "tid": dev_tid[engine], "args": {"request_id": rid}})

    for ev in ordered:
        if (
            ev.kind == "prefill_start"
            and ev.request_id in req_tid
            and "device.prefill" in dev_tid
        ):
            arrow(ev.request_id, ev.cycle, "device.prefill", "prefill")
        elif ev.kind == "decode_iter" and "device.decode" in dev_tid:
            for rid in ev.attrs.get("request_ids", ()):
                if rid not in req_tid:
                    continue
                if decode_flows.get(rid, 0) >= max_decode_flows:
                    continue
                decode_flows[rid] = decode_flows.get(rid, 0) + 1
                arrow(rid, ev.cycle, "device.decode", "decode")
    return out
