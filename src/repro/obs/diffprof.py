"""Differential profiling: conservation-checked cycle-delta attribution.

The repo already explains *why a cycle is idle* (the PR-5 stall
taxonomy of :mod:`repro.hw.introspect`) and *who paid for it* (the
cost ledger of :mod:`repro.obs.costs`).  This module explains **why
run B differs from run A** — the question every optimization argument
(A3 vs A4, prefetch depth k vs k+1, w8a8 vs fp16) ultimately reduces
to.

Two concepts:

* :class:`RunProfile` — a frozen, exact-integer capture of one traced
  program execution: the makespan, every engine lane's busy /
  per-(cause, block) stall / drain account, per-unit load+compute
  work, and per-HBM-channel streamed bytes.  Captured live by
  :func:`profile_run` (one ``trace_program_with_schedule`` pass) or
  round-tripped through JSON (``as_dict``/``from_dict``) so a profile
  written by one process can be diffed by another.
* :class:`DeltaWaterfall` — the hierarchical delta between two
  profiles, built by :func:`diff_profiles`.  Every lane's leaves
  satisfy the *same* conservation identity the stall classifier
  guarantees per run, transported to the delta domain::

      Δbusy + Σ Δstall(cause, block) + Δno_work == Δmakespan   (per lane)

  plus ``Σ Δblock_work == Δtotal_work`` and ``Σ Δchannel_bytes ==
  Δload_bytes`` on the work/byte facets.  All quantities are exact
  integers; ``diff(a, a)`` is identically zero and
  ``diff(a, b) == -diff(b, a)`` (:meth:`DeltaWaterfall.negated`).

:func:`delta_counter_tracks` renders the same comparison as Perfetto
counter tracks (candidate-minus-base utilization per engine on a
shared bucket grid), and :func:`diff_tenant_costs` applies the delta
treatment to two PR-9 cost ledgers with its own conservation check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = [
    "PROFILE_SCHEMA",
    "LaneProfile",
    "RunProfile",
    "profile_run",
    "load_profile",
    "DeltaLeaf",
    "LaneDelta",
    "DeltaWaterfall",
    "diff_profiles",
    "delta_counter_tracks",
    "diff_tenant_costs",
    "render_waterfall",
]

#: Bumped whenever the serialized profile layout changes incompatibly.
PROFILE_SCHEMA = "repro.diffprof/1"

#: Pseudo-causes bracketing the wait taxonomy in a lane's account.
BUSY = "busy"
NO_WORK = "no_work"


def _as_int(value: object, what: str) -> int:
    """Exact integer coercion: the cycle model is integer arithmetic,
    so any fractional quantity reaching the delta engine is a bug."""
    f = float(value)  # type: ignore[arg-type]
    i = int(round(f))
    if f != i:
        raise ValueError(f"{what} is not an exact integer: {f!r}")
    return i


# ------------------------------------------------------------ run profile
@dataclass(frozen=True)
class LaneProfile:
    """One engine lane's exactly-conserved cycle account."""

    busy: int
    #: cause -> block (unit label) -> idle cycles.  Only wait causes;
    #: the drain tail lives in ``no_work``.
    stalls: Mapping[str, Mapping[str, int]]
    no_work: int

    @property
    def stall_total(self) -> int:
        return sum(c for blocks in self.stalls.values() for c in blocks.values())

    def conservation_error(self, makespan: int) -> int:
        return self.busy + self.stall_total + self.no_work - makespan


@dataclass(frozen=True)
class RunProfile:
    """Exact-integer capture of one traced program execution."""

    label: str
    architecture: str
    makespan: int
    lanes: Mapping[str, LaneProfile]
    #: unit label -> {"load": cycles, "compute": cycles}.
    block_work: Mapping[str, Mapping[str, int]]
    #: HBM channel (as str, JSON-stable) -> streamed weight bytes.
    channel_bytes: Mapping[str, int]
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def load_bytes(self) -> int:
        return sum(self.channel_bytes.values())

    @property
    def work_cycles(self) -> int:
        return sum(
            w.get("load", 0) + w.get("compute", 0)
            for w in self.block_work.values()
        )

    def verify_conservation(self) -> None:
        """Raise unless every lane's account sums to the makespan."""
        broken = {
            name: err
            for name, lane in self.lanes.items()
            if (err := lane.conservation_error(self.makespan)) != 0
        }
        if broken:
            raise ValueError(
                f"run profile '{self.label}' is not conservative: {broken} "
                f"(makespan {self.makespan})"
            )

    def as_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "label": self.label,
            "architecture": self.architecture,
            "makespan_cycles": self.makespan,
            "lanes": {
                name: {
                    "busy": lane.busy,
                    "stalls": {
                        cause: dict(blocks)
                        for cause, blocks in sorted(lane.stalls.items())
                    },
                    "no_work": lane.no_work,
                }
                for name, lane in sorted(self.lanes.items())
            },
            "block_work": {
                label: dict(w) for label, w in sorted(self.block_work.items())
            },
            "channel_bytes": dict(sorted(self.channel_bytes.items())),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunProfile":
        schema = payload.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"profile schema mismatch: got '{schema}', "
                f"this reader speaks '{PROFILE_SCHEMA}'"
            )
        lanes = {
            str(name): LaneProfile(
                busy=_as_int(entry["busy"], f"{name}.busy"),
                stalls={
                    str(cause): {
                        str(block): _as_int(cyc, f"{name}.{cause}.{block}")
                        for block, cyc in blocks.items()
                    }
                    for cause, blocks in entry.get("stalls", {}).items()
                },
                no_work=_as_int(entry["no_work"], f"{name}.no_work"),
            )
            for name, entry in dict(payload["lanes"]).items()  # type: ignore[index]
        }
        profile = cls(
            label=str(payload.get("label", "")),
            architecture=str(payload.get("architecture", "")),
            makespan=_as_int(payload["makespan_cycles"], "makespan"),  # type: ignore[index]
            lanes=lanes,
            block_work={
                str(label): {k: _as_int(v, f"block_work.{label}.{k}")
                             for k, v in w.items()}
                for label, w in dict(payload.get("block_work", {})).items()
            },
            channel_bytes={
                str(ch): _as_int(v, f"channel_bytes.{ch}")
                for ch, v in dict(payload.get("channel_bytes", {})).items()
            },
            meta=dict(payload.get("meta", {})),
        )
        profile.verify_conservation()
        return profile


def profile_run(
    program,
    architecture: str = "A3",
    block_overhead: int | None = None,
    label: str = "",
    *,
    timeline=None,
    sched=None,
) -> RunProfile:
    """Capture one program execution as a :class:`RunProfile`.

    Runs ``trace_program_with_schedule`` once (pass ``timeline`` and
    ``sched`` to reuse an earlier scheduling pass), classifies every
    idle cycle through :func:`repro.hw.introspect.classify_stalls`,
    and snapshots the per-unit work and per-channel byte placement.
    The result is verified conservative before it is returned.
    """
    from repro.hw.introspect import classify_stalls
    from repro.hw.program import (
        program_block_work,
        program_hbm_bytes,
        trace_program_with_schedule,
    )

    if block_overhead is None:
        block_overhead = program.fabric.calibration.block_overhead_cycles
    if timeline is None or sched is None:
        timeline, sched = trace_program_with_schedule(
            program, architecture, block_overhead
        )
    report = classify_stalls(
        program, architecture, block_overhead, timeline=timeline, sched=sched
    )
    report.verify_conservation()

    lanes: dict[str, LaneProfile] = {}
    per_lane: dict[str, dict[str, dict[str, int]]] = {}
    for iv in report.intervals:
        if iv.cause == NO_WORK:
            continue
        blocks = per_lane.setdefault(iv.engine, {}).setdefault(iv.cause, {})
        blocks[iv.block] = blocks.get(iv.block, 0) + _as_int(
            iv.cycles, f"{iv.engine} stall interval"
        )
    for name, bd in report.engines.items():
        lanes[name] = LaneProfile(
            busy=_as_int(bd.busy_cycles, f"{name}.busy"),
            stalls=per_lane.get(name, {}),
            no_work=_as_int(bd.no_work_cycles, f"{name}.no_work"),
        )

    block_work = {
        work.label: {
            "load": _as_int(work.load_cycles, f"{work.label}.load"),
            "compute": _as_int(work.compute_cycles, f"{work.label}.compute"),
        }
        for work in program_block_work(program, architecture)
    }
    channel_bytes = {
        str(ch): _as_int(n, f"channel {ch} bytes")
        for ch, n in program_hbm_bytes(program, architecture).items()
    }
    profile = RunProfile(
        label=label or str(architecture),
        architecture=str(architecture),
        makespan=_as_int(timeline.makespan, "makespan"),
        lanes=lanes,
        block_work=block_work,
        channel_bytes=channel_bytes,
        meta={
            "s": program.meta.get("s"),
            "blocks": len(program.blocks),
            "ops": program.num_ops,
            "block_overhead": block_overhead,
        },
    )
    profile.verify_conservation()
    return profile


def load_profile(path) -> RunProfile:
    """Read a profile written as JSON (a ``runprofile.json`` artifact
    of ``repro-asr profile``, or any :meth:`RunProfile.as_dict` dump).
    Directories are resolved to the ``runprofile.json`` inside them."""
    import json
    import pathlib

    p = pathlib.Path(path)
    if p.is_dir():
        p = p / "runprofile.json"
    if not p.exists():
        raise FileNotFoundError(f"no run profile at {p}")
    return RunProfile.from_dict(json.loads(p.read_text()))


# -------------------------------------------------------- delta waterfall
@dataclass(frozen=True)
class DeltaLeaf:
    """One attributed delta: cycles that moved on (engine, cause, block)."""

    engine: str
    cause: str  # "busy", a wait cause, or "no_work"
    block: str  # unit label ("" for busy / no_work)
    delta: int


@dataclass(frozen=True)
class LaneDelta:
    """One engine lane's delta account (cand − base)."""

    busy: int
    stalls: Mapping[str, Mapping[str, int]]
    no_work: int

    @property
    def stall_total(self) -> int:
        return sum(c for blocks in self.stalls.values() for c in blocks.values())

    @property
    def total(self) -> int:
        """The lane's leaf sum — must equal the makespan delta."""
        return self.busy + self.stall_total + self.no_work


def _diff_nested(
    a: Mapping[str, Mapping[str, int]], b: Mapping[str, Mapping[str, int]]
) -> dict[str, dict[str, int]]:
    out: dict[str, dict[str, int]] = {}
    for cause in sorted(set(a) | set(b)):
        blocks_a, blocks_b = a.get(cause, {}), b.get(cause, {})
        deltas = {
            block: blocks_b.get(block, 0) - blocks_a.get(block, 0)
            for block in sorted(set(blocks_a) | set(blocks_b))
        }
        deltas = {k: v for k, v in deltas.items() if v != 0}
        if deltas:
            out[cause] = deltas
    return out


@dataclass
class DeltaWaterfall:
    """The hierarchical, exactly-conserved delta between two profiles."""

    base_label: str
    cand_label: str
    base_makespan: int
    cand_makespan: int
    lanes: Mapping[str, LaneDelta]
    #: unit label -> {"load": Δcycles, "compute": Δcycles}, non-zero only.
    block_work: Mapping[str, Mapping[str, int]]
    #: HBM channel -> Δbytes, non-zero only.
    channel_bytes: Mapping[str, int]
    base_load_bytes: int = 0
    cand_load_bytes: int = 0
    base_work_cycles: int = 0
    cand_work_cycles: int = 0

    @property
    def makespan_delta(self) -> int:
        return self.cand_makespan - self.base_makespan

    @property
    def is_zero(self) -> bool:
        return (
            self.makespan_delta == 0
            and all(
                lane.busy == 0 and lane.no_work == 0 and not lane.stalls
                for lane in self.lanes.values()
            )
            and not self.block_work
            and not self.channel_bytes
        )

    def verify_conservation(self) -> None:
        """Raise unless every lane's leaves sum exactly to the makespan
        delta, the block-work leaves to the total-work delta, and the
        channel-byte leaves to the load-bytes delta."""
        broken = {
            name: lane.total - self.makespan_delta
            for name, lane in self.lanes.items()
            if lane.total != self.makespan_delta
        }
        if broken:
            raise ValueError(
                f"delta waterfall is not conservative "
                f"(Δmakespan {self.makespan_delta}): lane residuals {broken}"
            )
        work_leaves = sum(
            w.get("load", 0) + w.get("compute", 0)
            for w in self.block_work.values()
        )
        work_delta = self.cand_work_cycles - self.base_work_cycles
        if work_leaves != work_delta:
            raise ValueError(
                f"block-work leaves sum to {work_leaves}, "
                f"expected Δwork {work_delta}"
            )
        byte_leaves = sum(self.channel_bytes.values())
        byte_delta = self.cand_load_bytes - self.base_load_bytes
        if byte_leaves != byte_delta:
            raise ValueError(
                f"channel-byte leaves sum to {byte_leaves}, "
                f"expected Δload_bytes {byte_delta}"
            )

    def leaves(self, engine_filter: str = "") -> list[DeltaLeaf]:
        """Every non-zero (engine, cause, block) leaf, largest |Δ| first."""
        out: list[DeltaLeaf] = []
        for engine, lane in self.lanes.items():
            if engine_filter and engine_filter not in engine:
                continue
            if lane.busy:
                out.append(DeltaLeaf(engine, BUSY, "", lane.busy))
            for cause, blocks in lane.stalls.items():
                for block, delta in blocks.items():
                    out.append(DeltaLeaf(engine, cause, block, delta))
            if lane.no_work:
                out.append(DeltaLeaf(engine, NO_WORK, "", lane.no_work))
        out.sort(key=lambda leaf: (-abs(leaf.delta), leaf.engine, leaf.cause,
                                   leaf.block))
        return out

    def top_leaves(self, n: int = 5, engine_filter: str = "") -> list[DeltaLeaf]:
        return self.leaves(engine_filter)[:n]

    def cause_totals(self, engine_filter: str = "") -> dict[str, int]:
        """Δcycles per cause (busy, wait causes, no_work) summed over
        matching lanes — the aggregate waterfall bars."""
        out: dict[str, int] = {}
        for engine, lane in self.lanes.items():
            if engine_filter and engine_filter not in engine:
                continue
            out[BUSY] = out.get(BUSY, 0) + lane.busy
            for cause, blocks in lane.stalls.items():
                out[cause] = out.get(cause, 0) + sum(blocks.values())
            out[NO_WORK] = out.get(NO_WORK, 0) + lane.no_work
        return {k: v for k, v in out.items() if v != 0}

    def dominant_cause(self, engine_filter: str = ".psa") -> tuple[str, int] | None:
        """The cause moving the most cycles over matching lanes, as
        ``(cause, Δcycles)``; ``None`` when nothing moved."""
        totals = self.cause_totals(engine_filter)
        if not totals:
            return None
        cause = max(totals, key=lambda c: (abs(totals[c]), c))
        return cause, totals[cause]

    def negated(self) -> "DeltaWaterfall":
        """The exact inverse — ``diff(a, b).negated() == diff(b, a)``."""
        return DeltaWaterfall(
            base_label=self.cand_label,
            cand_label=self.base_label,
            base_makespan=self.cand_makespan,
            cand_makespan=self.base_makespan,
            lanes={
                name: LaneDelta(
                    busy=-lane.busy,
                    stalls={
                        cause: {b: -d for b, d in blocks.items()}
                        for cause, blocks in lane.stalls.items()
                    },
                    no_work=-lane.no_work,
                )
                for name, lane in self.lanes.items()
            },
            block_work={
                label: {k: -v for k, v in w.items()}
                for label, w in self.block_work.items()
            },
            channel_bytes={ch: -v for ch, v in self.channel_bytes.items()},
            base_load_bytes=self.cand_load_bytes,
            cand_load_bytes=self.base_load_bytes,
            base_work_cycles=self.cand_work_cycles,
            cand_work_cycles=self.base_work_cycles,
        )

    def as_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "base": {"label": self.base_label,
                     "makespan_cycles": self.base_makespan,
                     "load_bytes": self.base_load_bytes,
                     "work_cycles": self.base_work_cycles},
            "cand": {"label": self.cand_label,
                     "makespan_cycles": self.cand_makespan,
                     "load_bytes": self.cand_load_bytes,
                     "work_cycles": self.cand_work_cycles},
            "makespan_delta": self.makespan_delta,
            "cause_totals": self.cause_totals(),
            "psa_cause_totals": self.cause_totals(".psa"),
            "lanes": {
                name: {
                    "busy": lane.busy,
                    "stalls": {c: dict(b) for c, b in sorted(lane.stalls.items())},
                    "no_work": lane.no_work,
                }
                for name, lane in sorted(self.lanes.items())
            },
            "block_work": {
                label: dict(w) for label, w in sorted(self.block_work.items())
            },
            "channel_bytes": dict(sorted(self.channel_bytes.items())),
            "top_leaves": [
                {"engine": leaf.engine, "cause": leaf.cause,
                 "block": leaf.block, "delta": leaf.delta}
                for leaf in self.top_leaves(10)
            ],
        }


def diff_profiles(base: RunProfile, cand: RunProfile) -> DeltaWaterfall:
    """Build the conservation-checked delta waterfall ``cand − base``.

    An engine lane present in only one run is treated as fully idle
    (``no_work`` for that run's whole makespan) in the other — the
    account an observer of the missing lane would have recorded — so
    the per-lane conservation identity survives cross-architecture
    diffs (A1 has no ``hbm1`` lane; A3 does).
    """
    base.verify_conservation()
    cand.verify_conservation()

    lanes: dict[str, LaneDelta] = {}
    absent_base = LaneProfile(busy=0, stalls={}, no_work=base.makespan)
    absent_cand = LaneProfile(busy=0, stalls={}, no_work=cand.makespan)
    for name in sorted(set(base.lanes) | set(cand.lanes)):
        a = base.lanes.get(name, absent_base)
        b = cand.lanes.get(name, absent_cand)
        lanes[name] = LaneDelta(
            busy=b.busy - a.busy,
            stalls=_diff_nested(a.stalls, b.stalls),
            no_work=b.no_work - a.no_work,
        )

    block_work: dict[str, dict[str, int]] = {}
    for label in sorted(set(base.block_work) | set(cand.block_work)):
        a_w = base.block_work.get(label, {})
        b_w = cand.block_work.get(label, {})
        deltas = {
            k: b_w.get(k, 0) - a_w.get(k, 0)
            for k in sorted(set(a_w) | set(b_w))
        }
        deltas = {k: v for k, v in deltas.items() if v != 0}
        if deltas:
            block_work[label] = deltas

    channel_bytes = {
        ch: delta
        for ch in sorted(set(base.channel_bytes) | set(cand.channel_bytes))
        if (delta := cand.channel_bytes.get(ch, 0)
            - base.channel_bytes.get(ch, 0)) != 0
    }

    waterfall = DeltaWaterfall(
        base_label=base.label,
        cand_label=cand.label,
        base_makespan=base.makespan,
        cand_makespan=cand.makespan,
        lanes=lanes,
        block_work=block_work,
        channel_bytes=channel_bytes,
        base_load_bytes=base.load_bytes,
        cand_load_bytes=cand.load_bytes,
        base_work_cycles=base.work_cycles,
        cand_work_cycles=cand.work_cycles,
    )
    waterfall.verify_conservation()
    return waterfall


# ------------------------------------------------------- perfetto deltas
def delta_counter_tracks(
    base_timeline,
    cand_timeline,
    bucket_cycles: float | None = None,
) -> dict[str, list[tuple[float, float]]]:
    """Candidate-minus-base utilization as Perfetto counter tracks.

    Both timelines are bucketed on the *same* grid (the longer
    makespan, so the shorter run reads as idle past its end) and
    subtracted sample-for-sample.  Track names mirror the PR-5
    convention: ``delta:bandwidth:hbm*`` for HBM channels,
    ``delta:utilization:*`` for compute lanes.  Feed the result to
    :func:`repro.obs.export.chrome_trace` as ``counters``.
    """
    from repro.hw.introspect import utilization_counters

    span = max(base_timeline.makespan, cand_timeline.makespan)
    if span <= 0:
        return {}
    if bucket_cycles is None:
        bucket_cycles = max(span / 64.0, 1.0)
    engines = sorted(
        set(base_timeline.engines()) | set(cand_timeline.engines())
    )
    base = utilization_counters(
        base_timeline, bucket_cycles, engines=engines, span=span
    )
    cand = utilization_counters(
        cand_timeline, bucket_cycles, engines=engines, span=span
    )
    tracks: dict[str, list[tuple[float, float]]] = {}
    for engine in engines:
        prefix = "bandwidth" if engine.startswith("hbm") else "utilization"
        tracks[f"delta:{prefix}:{engine}"] = [
            (t, u_cand - u_base)
            for (t, u_base), (_, u_cand) in zip(base[engine], cand[engine])
        ]
    return tracks


# ------------------------------------------------------ cost-ledger diff
def diff_tenant_costs(base_ledger, cand_ledger) -> dict:
    """Per-tenant cost deltas between two PR-9 :class:`repro.obs.costs.
    CostLedger` runs, with the ledger conservation identity transported
    to the delta domain: tenant Δattributed cycles sum exactly to the
    run-level Δattributed, and Δattributed + Δunattributed equals the
    Δmakespan."""
    base_totals = base_ledger.totals()
    cand_totals = cand_ledger.totals()
    totals = {
        key: cand_totals[key] - base_totals[key]
        for key in sorted(set(base_totals) & set(cand_totals))
    }
    tenants: dict[int, dict[str, int]] = {}
    base_by = {tc.tenant: tc for tc in base_ledger.per_tenant()}
    cand_by = {tc.tenant: tc for tc in cand_ledger.per_tenant()}
    for tenant in sorted(set(base_by) | set(cand_by)):
        a, b = base_by.get(tenant), cand_by.get(tenant)
        tenants[tenant] = {
            "attributed_cycles": (b.attributed_cycles if b else 0)
            - (a.attributed_cycles if a else 0),
            "hbm_load_bytes": (b.hbm_load_bytes if b else 0)
            - (a.hbm_load_bytes if a else 0),
            "requests": (b.requests if b else 0) - (a.requests if a else 0),
            "good": (b.good if b else 0) - (a.good if a else 0),
        }
    tenant_sum = sum(t["attributed_cycles"] for t in tenants.values())
    if tenant_sum != totals["attributed_cycles"]:
        raise ValueError(
            f"tenant cycle deltas sum to {tenant_sum}, expected "
            f"Δattributed {totals['attributed_cycles']}"
        )
    if (totals["attributed_cycles"] + totals["unattributed_cycles"]
            != totals["makespan_cycles"]):
        raise ValueError("Δattributed + Δunattributed != Δmakespan")
    return {"totals": totals, "tenants": tenants}


# -------------------------------------------------------------- rendering
def _fmt(delta: int) -> str:
    return f"{delta:+,}"


def render_waterfall(waterfall: DeltaWaterfall, top: int = 8) -> str:
    """Text waterfall: the makespan delta, the aggregate per-cause
    bars, the top (engine, cause, block) leaves, and the work/byte
    facets."""
    from repro.analysis.report import format_table

    base_ms, cand_ms = waterfall.base_makespan, waterfall.cand_makespan
    rel = (waterfall.makespan_delta / base_ms) if base_ms else 0.0
    lines = [
        f"differential profile: {waterfall.base_label} -> "
        f"{waterfall.cand_label}",
        f"makespan: {base_ms:,} -> {cand_ms:,} cycles  "
        f"(Δ {_fmt(waterfall.makespan_delta)}, {rel:+.2%})",
        "conservation: every lane's leaves sum exactly to "
        f"{_fmt(waterfall.makespan_delta)}",
        "",
    ]
    if waterfall.is_zero:
        lines.append("no differences: the runs are cycle-identical")
        return "\n".join(lines)

    totals = waterfall.cause_totals()
    lane_count = len(waterfall.lanes)
    lines.append(f"Δcycles by cause (summed over {lane_count} lanes):")
    rows = [[cause, _fmt(delta)] for cause, delta in
            sorted(totals.items(), key=lambda kv: -abs(kv[1]))]
    lines.append(format_table(["cause", "Δcycles"], rows))
    psa = waterfall.dominant_cause(".psa")
    if psa is not None:
        lines.append(
            f"PSA lanes dominated by: {psa[0]} ({_fmt(psa[1])} cycles)"
        )
    lines.append("")

    leaves = waterfall.top_leaves(top)
    if leaves:
        lines.append(f"top {len(leaves)} leaves (engine, cause, block):")
        rows = [
            [leaf.engine, leaf.cause, leaf.block or "-", _fmt(leaf.delta)]
            for leaf in leaves
        ]
        lines.append(format_table(["engine", "cause", "block", "Δcycles"], rows))
        lines.append("")

    if waterfall.block_work:
        moved = sorted(
            waterfall.block_work.items(),
            key=lambda kv: -abs(sum(kv[1].values())),
        )[:top]
        lines.append("Δwork per unit (load / compute cycles):")
        rows = [
            [label, _fmt(w.get("load", 0)), _fmt(w.get("compute", 0))]
            for label, w in moved
        ]
        lines.append(format_table(["unit", "Δload", "Δcompute"], rows))
        lines.append("")
    if waterfall.channel_bytes:
        lines.append("Δstreamed bytes per HBM channel:")
        rows = [[f"hbm{ch}", _fmt(delta)]
                for ch, delta in sorted(waterfall.channel_bytes.items())]
        lines.append(format_table(["channel", "Δbytes"], rows))
    return "\n".join(lines).rstrip()
