"""Unified telemetry for the simulator stack.

Three dependency-free pieces:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms with stable dotted names (schema in
  :data:`METRIC_HELP` and docs/ARCHITECTURE.md §7).
* :mod:`repro.obs.spans` — a :class:`Tracer` of nested wall-clock
  spans over the host pipeline.
* :mod:`repro.obs.export` — Prometheus text exposition, JSONL event
  log, and Chrome-trace JSON (Perfetto) built from metrics, spans and
  the trace executor's :class:`repro.hw.trace.Timeline`.

Telemetry is **off by default**: the process-wide registry and tracer
are shared no-ops, so the instrumented layers (asr, hw, decoding) pay
a couple of attribute lookups and nothing else — pinned paper numbers
are unaffected.  Turn it on for a bounded scope with::

    from repro import obs

    with obs.telemetry() as session:
        pipeline.transcribe(waveform)
    print(obs.export.prometheus_text(session.metrics))

``repro-asr profile`` wraps exactly this around one utterance and dumps
chrome-trace + Prometheus + JSONL artifacts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs import export
from repro.obs.costs import (
    CostLedger,
    RequestCost,
    TenantCost,
    cost_flow_events,
    jain_index,
    largest_remainder_split,
)
from repro.obs.export import (
    ACCEL_PID,
    HOST_PID,
    chrome_trace,
    chrome_trace_json,
    engine_lane_tids,
    jsonl_lines,
    prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_HELP,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    enabled,
    registry,
    set_registry,
)
from repro.obs.diffprof import (
    PROFILE_SCHEMA,
    DeltaLeaf,
    DeltaWaterfall,
    LaneDelta,
    LaneProfile,
    RunProfile,
    delta_counter_tracks,
    diff_profiles,
    diff_tenant_costs,
    load_profile,
    profile_run,
    render_waterfall,
)
from repro.obs.probe import record_program_metrics
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    set_tracer,
    tracer,
)
from repro.obs.vtrace import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_SAMPLER,
    NULL_VTRACE,
    NullVSampler,
    NullVTraceRecorder,
    TimeSeries,
    VEvent,
    VSampler,
    VTraceRecorder,
    device_timeline,
    rate_series,
    request_lane_tids,
    request_phases,
    request_track_events,
    vtrace_jsonl_lines,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "METRIC_HELP",
    "DEFAULT_BUCKETS",
    "registry",
    "set_registry",
    "enabled",
    "Span",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "tracer",
    "set_tracer",
    "export",
    "prometheus_text",
    "ACCEL_PID",
    "HOST_PID",
    "engine_lane_tids",
    "chrome_trace",
    "chrome_trace_json",
    "jsonl_lines",
    "record_program_metrics",
    "PROFILE_SCHEMA",
    "LaneProfile",
    "RunProfile",
    "profile_run",
    "load_profile",
    "DeltaLeaf",
    "LaneDelta",
    "DeltaWaterfall",
    "diff_profiles",
    "delta_counter_tracks",
    "diff_tenant_costs",
    "render_waterfall",
    "CostLedger",
    "RequestCost",
    "TenantCost",
    "largest_remainder_split",
    "jain_index",
    "cost_flow_events",
    "EVENT_SCHEMA_VERSION",
    "EVENT_KINDS",
    "VEvent",
    "VTraceRecorder",
    "NullVTraceRecorder",
    "NULL_VTRACE",
    "TimeSeries",
    "VSampler",
    "NullVSampler",
    "NULL_SAMPLER",
    "rate_series",
    "request_phases",
    "request_lane_tids",
    "request_track_events",
    "device_timeline",
    "vtrace_jsonl_lines",
    "TelemetrySession",
    "telemetry",
]


@dataclass(frozen=True)
class TelemetrySession:
    """Handle yielded by :func:`telemetry`: the live registry + tracer."""

    metrics: MetricsRegistry
    spans: Tracer


@contextmanager
def telemetry(
    metrics: MetricsRegistry | None = None,
    spans: Tracer | None = None,
) -> Iterator[TelemetrySession]:
    """Install a live registry and tracer for the ``with`` body, then
    restore whatever was active before (the no-op defaults, usually)."""
    reg = metrics if metrics is not None else MetricsRegistry()
    tr = spans if spans is not None else Tracer()
    prev_reg = set_registry(reg)
    prev_tr = set_tracer(tr)
    try:
        yield TelemetrySession(metrics=reg, spans=tr)
    finally:
        set_registry(prev_reg)
        set_tracer(prev_tr)
