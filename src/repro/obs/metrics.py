"""Dependency-free metrics: counters, gauges and histograms with
stable dotted names.

The registry is the single sink every instrumented layer writes to.
By default the process-wide registry is a :class:`NullRegistry` whose
instruments are shared no-ops, so instrumentation costs a couple of
attribute lookups per call site when telemetry is off — the pinned
paper numbers and the simulator benchmarks see no change.  A real
:class:`MetricsRegistry` is installed for the duration of a profiling
run via :func:`set_registry` (or the :func:`repro.obs.telemetry`
session context manager).

Naming schema (documented in ``docs/ARCHITECTURE.md`` §7): dotted
lowercase names, ``repro.<layer>.<quantity>[_<unit>]``, with dynamic
dimensions (engine lane, HBM channel, op kind) carried as labels, never
embedded in the name.  :data:`METRIC_HELP` is the authoritative list —
the exporter takes HELP strings from it and the tier-1 schema test pins
its keys.
"""

from __future__ import annotations

import bisect
import math
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "METRIC_HELP",
    "DEFAULT_BUCKETS",
    "registry",
    "set_registry",
    "enabled",
]

#: Dotted lowercase metric names: ``repro.hw.hbm.bytes`` etc.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: Histogram bucket upper bounds, tuned for millisecond-scale latencies
#: (+Inf is implicit).
DEFAULT_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: The exported metric-name schema: every instrument the repo emits.
#: Keep in sync with docs/ARCHITECTURE.md §7; tests pin these keys.
METRIC_HELP = {
    # ---- ASR pipeline (repro.asr.*, plus the headline repro.e2e_ms)
    "repro.e2e_ms": "Modeled end-to-end latency per utterance (host + prefill + decode), ms",
    "repro.asr.utterances": "Utterances transcribed",
    "repro.asr.tokens": "Output tokens emitted",
    "repro.asr.decode_steps": "Modeled autoregressive decode steps",
    "repro.asr.host_ms": "Modeled host preprocessing latency of the last utterance, ms",
    "repro.asr.host_measured_ms": "Measured wall-clock host preprocessing time, ms",
    "repro.asr.accel_ms": "Modeled single-shot accelerator (prefill) latency, ms",
    "repro.asr.decode_ms": "Modeled autoregressive decode latency, ms",
    "repro.asr.rtf": "Real-time factor: modeled processing time / audio time",
    "repro.asr.frames_per_s": "Hardware frames processed per modeled second",
    "repro.asr.throughput_seq_per_s": "Accelerator sequences per second",
    "repro.asr.streaming.chunks": "Chunks processed by the streaming transcriber",
    "repro.asr.streaming.utterances": "Long-form utterances streamed",
    "repro.asr.streaming.rtf": "Streaming real-time factor of the last utterance",
    # ---- block-program executors (repro.hw.program.*)
    "repro.hw.program.executions": "Functional-executor runs, by program kind",
    "repro.hw.program.ops": "Program ops executed by the functional executor, by op kind",
    "repro.hw.program.trace_ops": "Program ops accounted by the trace executor, by op kind",
    "repro.hw.program.lower.cache_hits": "lru_cache hits, by program lowering",
    "repro.hw.program.lower.cache_misses": "lru_cache misses, by program lowering",
    # ---- memory system / engines (repro.hw.*)
    "repro.hw.hbm.bytes_streamed": "Weight bytes streamed from HBM by executed programs",
    "repro.hw.hbm.bytes": "Weight bytes per HBM channel of the profiled program",
    "repro.hw.engine.busy_cycles": "Busy cycles per engine lane of the profiled program",
    "repro.hw.psa.occupancy": "Mean PSA-lane busy fraction of the profiled program",
    "repro.hw.schedule.total_cycles": "Scheduled cycles of the profiled program",
    "repro.hw.schedule.stall_cycles": "Compute stall cycles of the profiled program",
    "repro.hw.stall.cycles": "Idle cycles per engine lane by attributed stall cause of the profiled program",
    "repro.hw.decode.steps": "KV-cached decoder steps executed on the fabric",
    # ---- KV cache (repro.hw.kv_cache.*)
    "repro.hw.kv_cache.prefills": "Cross-attention K/V cache prefills",
    "repro.hw.kv_cache.appends": "K/V rows appended to decoder cache banks",
    "repro.hw.kv_cache.rewinds": "Cache rewinds (beam-search branching)",
    "repro.hw.kv_cache.resident_bytes": "Bytes resident in the decoder K/V cache banks",
    # ---- serving simulator (repro.serving.*) — virtual-time quantities
    "repro.serving.requests": "Requests that arrived at the serving simulator",
    "repro.serving.completions": "Requests fully decoded by the serving simulator",
    "repro.serving.prefills": "Prefill passes scheduled on the simulated accelerator",
    "repro.serving.decode_iterations": "Continuous-batching decode iterations executed",
    "repro.serving.preemptions": "Active requests preempted to relieve KV-cache pressure",
    "repro.serving.replayed_steps": "Decode steps replayed after preemption rewinds",
    "repro.serving.queue_depth": "Requests waiting for admission at the last scheduler event",
    "repro.serving.batch_size": "Decode batch size at the last scheduler event",
    "repro.serving.kv_resident_bytes": "Modeled bytes resident across all active KV caches",
    "repro.serving.e2e_ms": "Virtual-time end-to-end request latency, ms",
    "repro.serving.queue_ms": "Virtual-time queueing delay before prefill, ms",
    # ---- serving SLO monitor (repro.serving.slo.*)
    "repro.serving.slo.attainment": "Fraction of completed requests meeting the latency SLO",
    "repro.serving.slo.violations": "Completed requests that missed the latency SLO",
    "repro.serving.slo.error_budget_consumed": "Fraction of the SLO error budget consumed by the run",
    "repro.serving.slo.burn_rate": "Error-budget burn rate over the trailing window (label: window)",
    "repro.serving.slo.alerts": "Multi-window burn-rate alerts fired (rising edges)",
    # ---- serving cost attribution (repro.serving.cost.*)
    "repro.serving.cost.attributed_cycles": "Device cycles attributed to requests by the cost ledger (label: tenant)",
    "repro.serving.cost.unattributed_cycles": "Device cycles no request paid for (idle between arrivals)",
    "repro.serving.cost.hbm_bytes": "HBM weight-stream bytes attributed by the cost ledger (label: tenant)",
    "repro.serving.cost.kv_byte_cycles": "KV-cache residency integral attributed by the cost ledger, byte-cycles (label: tenant)",
    "repro.serving.cost.requests": "Requests accounted by the cost ledger (label: tenant)",
    "repro.serving.cost.jain_index": "Jain fairness index over per-tenant attributed cycles",
    # ---- decoding (repro.decoding.*)
    "repro.decoding.beam.hypotheses_expanded": "Beam hypotheses expanded (step-function calls)",
    "repro.decoding.beam.early_stops": "Beam searches ended by the early-stop bound",
    "repro.decoding.beam.finished": "Finished beam hypotheses",
}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter '{self.name}' cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-written value (may move in either direction)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram (Prometheus classic style)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be strictly increasing and non-empty")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; do not pass it")
        self.name = name
        self.labels = dict(labels or {})
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs ending with +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds + (math.inf,), self._counts):
            running += n
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile (Prometheus histogram_quantile
        semantics): locate the bucket holding the q-th observation and
        interpolate linearly between its bounds.  The lowest bucket
        interpolates from 0; ranks landing in the +Inf bucket clamp to
        the highest finite bound.  NaN when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return math.nan
        rank = q * total
        bounds = self.bounds + (math.inf,)
        cumulative = 0
        for i, n in enumerate(counts):
            below = cumulative
            cumulative += n
            if cumulative >= rank and n > 0:
                upper = bounds[i]
                if math.isinf(upper):
                    return self.bounds[-1]
                lower = bounds[i - 1] if i > 0 else 0.0
                return lower + (upper - lower) * ((rank - below) / n)
        return self.bounds[-1]


class MetricsRegistry:
    """Thread-safe home of every instrument, keyed by (name, labels).

    Instruments are created on first use and returned on every later
    call with the same name and labels — call sites never hold state.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------ instruments
    def _get(self, cls, name: str, labels: dict, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name '{name}' is not a dotted lowercase identifier"
            )
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._metrics.get(key)
            if inst is None:
                inst = cls(name, labels, **kwargs)
                self._metrics[key] = inst
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric '{name}' already registered as {inst.kind}"
                )
            return inst

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------- inspection
    def collect(self) -> list[Counter | Gauge | Histogram]:
        """Every instrument, sorted by (name, labels) for stable output."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def names(self) -> list[str]:
        """Sorted distinct metric names registered so far."""
        with self._lock:
            return sorted({name for name, _ in self._metrics})

    def value(self, name: str, **labels: str) -> float:
        """Current value of one counter/gauge (KeyError if absent)."""
        inst = self._metrics[(name, _label_key(labels))]
        return inst.value

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot: ``name{k=v,...}`` -> value (histograms
        become ``{count, sum, buckets}`` objects)."""
        out: dict[str, object] = {}
        for inst in self.collect():
            key = inst.name
            if inst.labels:
                inner = ",".join(f"{k}={v}" for k, v in sorted(inst.labels.items()))
                key = f"{inst.name}{{{inner}}}"
            if isinstance(inst, Histogram):
                out[key] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "buckets": {
                        ("+Inf" if math.isinf(b) else repr(b)): n
                        for b, n in inst.cumulative_buckets()
                    },
                    "quantiles": {
                        f"p{int(q * 100)}": inst.quantile(q)
                        for q in (0.5, 0.95, 0.99)
                    },
                }
            else:
                out[key] = inst.value
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    labels: dict = {}
    kind = "null"
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_buckets(self) -> list:
        return []

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled default: hands out one shared no-op instrument."""

    enabled = False

    def counter(self, name: str, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=DEFAULT_BUCKETS, **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT


NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def registry() -> MetricsRegistry:
    """The process-wide active registry (a no-op unless installed)."""
    return _active


def set_registry(reg: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``reg`` (None restores the no-op default); returns the
    previously active registry so callers can restore it."""
    global _active
    previous = _active
    _active = reg if reg is not None else NULL_REGISTRY
    return previous


def enabled() -> bool:
    return _active.enabled
