"""Virtual-time request lifecycle tracing and time-series telemetry.

The serving scheduler (:mod:`repro.serving.scheduler`) runs on an
integer fabric-cycle clock, not host wall-clock, so the span tracer of
:mod:`repro.obs.spans` cannot see inside a simulated run.  This module
is the virtual-clock twin: the scheduler emits typed lifecycle events
(:data:`EVENT_KINDS`) into a :class:`VTraceRecorder` and samples gauges
into a :class:`VSampler` at a fixed cycle cadence, and the exporters
here turn both into

* a deterministic, schema-versioned JSONL event log
  (:func:`vtrace_jsonl_lines`) — bit-identical across runs with the
  same seed, because every timestamp is an integer cycle;
* per-request Perfetto lifecycle tracks (:func:`request_track_events`)
  that merge into the existing Chrome-trace exporter
  (:func:`repro.obs.export.chrome_trace` via ``extra_events``) next to
  the device lanes, all on one cycle->microsecond clock mapping;
* a device-activity :class:`repro.hw.trace.Timeline`
  (:func:`device_timeline`) reconstructed from the events, so the
  accelerator process in the merged trace shows what the device was
  doing (prefill vs decode iterations) while each request waited;
* Perfetto counter tracks of the sampled series
  (:meth:`VSampler.counter_tracks`).

Clock-domain mapping: one fabric cycle at ``clock_mhz`` MHz is
``1 / clock_mhz`` microseconds, the same scale the device lanes use —
request tracks, counter series and engine lanes land on one time axis.

Like the metrics registry and span tracer, the disabled defaults
(:data:`NULL_VTRACE`, :data:`NULL_SAMPLER`) are shared no-ops: an
uninstrumented serving run pays one ``enabled`` attribute check per
hook and stays bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.hw.trace import Timeline

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_KINDS",
    "VEvent",
    "VTraceRecorder",
    "NullVTraceRecorder",
    "NULL_VTRACE",
    "TimeSeries",
    "VSampler",
    "NullVSampler",
    "NULL_SAMPLER",
    "rate_series",
    "request_phases",
    "request_lane_tids",
    "request_track_events",
    "device_timeline",
    "vtrace_jsonl_lines",
]

#: Version of the event schema below.  Bump on any change to event
#: kinds or their attribute contracts; the JSONL header carries it.
#:
#: Migration v1 -> v2: events gained an optional top-level ``tenant``
#: field (the owning tenant of per-request events, for cost
#: attribution), and ``decode_iter`` attrs gained ``request_ids`` /
#: ``tenants`` lists naming the batch members that shared the
#: iteration.  Both are additive: a v1 log is a valid v2 log with no
#: tenant information (``tenant`` absent means unknown; producers
#: default requests to tenant 0), and v1 readers that ignore unknown
#: fields parse v2 logs unchanged.
EVENT_SCHEMA_VERSION = 2

#: The typed lifecycle event taxonomy, in rough lifecycle order.
#:
#: - ``arrive``        — request entered the system (cycle = its true
#:   arrival instant, ``ceil(arrival_s * clock_hz)``).
#: - ``queue_wait``    — admission granted; ``wait_cycles`` attr holds
#:   the time spent queued since arrival (or since preemption).
#: - ``admit``         — worst-case K/V reservation taken.
#: - ``prefill_start`` / ``prefill_end`` — the encoder prefill pass
#:   (re-runs after preemption carry ``replay=True``).
#: - ``decode_iter``   — one continuous-batching decode iteration;
#:   attrs carry ``batch``, ``prefix_lengths`` and ``cycles``.
#: - ``preempt``       — an in-flight request was evicted (rewind).
#: - ``replay``        — one member replayed a previously-decoded step
#:   inside a decode iteration.
#: - ``complete``      — last token decoded; attrs carry the latency
#:   account.
#: - ``reject``        — admission-control rejection (a request whose
#:   worst-case cache can never fit the budget, with
#:   ``ServingConfig.reject_oversized``).
#: - ``slo_alert``     — multi-window burn-rate alert from the SLO
#:   monitor (:mod:`repro.serving.slo`), carried in the trace.
EVENT_KINDS = (
    "arrive",
    "queue_wait",
    "admit",
    "prefill_start",
    "prefill_end",
    "decode_iter",
    "preempt",
    "replay",
    "complete",
    "reject",
    "slo_alert",
)

_EVENT_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(frozen=True)
class VEvent:
    """One typed lifecycle event on the integer-cycle clock."""

    cycle: int
    kind: str
    request_id: int | None = None
    #: Owning tenant of a per-request event (``None`` when unknown or
    #: not applicable, e.g. ``decode_iter`` / ``slo_alert``).
    tenant: int | None = None
    attrs: dict = field(default_factory=dict)


class VTraceRecorder:
    """Collects :class:`VEvent` records in emission order.

    Emission order is deterministic (the scheduler is a deterministic
    event loop), so the recorded list — and every export derived from
    it — is bit-identical across runs with the same seed.
    """

    enabled = True

    def __init__(self) -> None:
        self._events: list[VEvent] = []

    def emit(
        self,
        kind: str,
        cycle: int,
        request_id: int | None = None,
        tenant: int | None = None,
        **attrs: object,
    ) -> None:
        """Record one event; ``kind`` must come from :data:`EVENT_KINDS`."""
        if kind not in _EVENT_KIND_SET:
            raise ValueError(
                f"unknown vtrace event kind '{kind}'; "
                f"expected one of {EVENT_KINDS}"
            )
        if cycle < 0:
            raise ValueError(f"event cycle must be non-negative, got {cycle}")
        self._events.append(
            VEvent(int(cycle), kind, request_id, tenant, dict(attrs))
        )

    @property
    def events(self) -> list[VEvent]:
        return list(self._events)

    def counts(self) -> dict[str, int]:
        """Events per kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for ev in self._events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out


class NullVTraceRecorder(VTraceRecorder):
    """The disabled default: one attribute check, no state."""

    enabled = False

    def emit(self, kind, cycle, request_id=None, tenant=None, **attrs):  # type: ignore[override]
        pass


NULL_VTRACE = NullVTraceRecorder()


# ----------------------------------------------------------- time series
class TimeSeries:
    """A ring-buffered series of ``(cycle, value)`` samples.

    Bounded so a long simulation cannot grow telemetry without limit;
    ``dropped`` counts evicted samples so exporters can flag
    truncation instead of silently presenting a partial series.
    """

    __slots__ = ("name", "capacity", "dropped", "_samples")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("time-series capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        self._samples: list[tuple[int, float]] = []

    def append(self, cycle: int, value: float) -> None:
        if len(self._samples) == self.capacity:
            self._samples.pop(0)
            self.dropped += 1
        self._samples.append((int(cycle), float(value)))

    @property
    def samples(self) -> list[tuple[int, float]]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


class VSampler:
    """Samples named gauges into ring-buffered series at a fixed
    cycle cadence.

    The scheduler offers a sample at every event-loop turn; the sampler
    records one per ``cadence_cycles``-aligned bucket (the first turn
    at or past the bucket boundary wins), so the series cadence is
    deterministic regardless of how unevenly virtual time advances.
    """

    enabled = True

    def __init__(self, cadence_cycles: int = 50_000, capacity: int = 4096) -> None:
        if cadence_cycles < 1:
            raise ValueError("cadence_cycles must be >= 1")
        self.cadence_cycles = int(cadence_cycles)
        self.capacity = int(capacity)
        self._series: dict[str, TimeSeries] = {}
        self._next_due = 0

    def sample(self, cycle: int, values: dict) -> bool:
        """Offer one sample set; records and returns True when due."""
        if cycle < self._next_due:
            return False
        for name, value in values.items():
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = TimeSeries(name, self.capacity)
            series.append(cycle, float(value))
        self._next_due = (cycle // self.cadence_cycles + 1) * self.cadence_cycles
        return True

    def series(self) -> dict[str, TimeSeries]:
        return dict(self._series)

    def get(self, name: str) -> TimeSeries | None:
        return self._series.get(name)

    def counter_tracks(self, prefix: str = "serving") -> dict[str, list[tuple[int, float]]]:
        """Perfetto-ready counter series (feed to
        :func:`repro.obs.export.chrome_trace` as ``counters``)."""
        return {
            f"{prefix}:{name}": ts.samples
            for name, ts in sorted(self._series.items())
        }


class NullVSampler(VSampler):
    """The disabled default: one attribute check, no state."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def sample(self, cycle, values):  # type: ignore[override]
        return False


NULL_SAMPLER = NullVSampler()


def rate_series(series: TimeSeries) -> list[tuple[int, float]]:
    """Per-cycle rate between consecutive samples of a *cumulative*
    series (e.g. cumulative prefill cycles -> prefill busy fraction).

    Each output point ``(cycle, rate)`` covers the window starting at
    ``cycle`` and ending at the next sample.  Degenerate inputs yield
    no windows rather than failing: an empty or single-sample series
    returns ``[]``, and a sample at the *same* cycle as its
    predecessor is folded into the next window (the later value wins
    as the window's endpoint — a zero-width window has no defined
    rate, so none is emitted).
    """
    out: list[tuple[int, float]] = []
    prev: tuple[int, float] | None = None
    for cycle, value in series.samples:
        if prev is not None and cycle > prev[0]:
            out.append((prev[0], (value - prev[1]) / (cycle - prev[0])))
        prev = (cycle, value)
    return out


# ------------------------------------------------------- phase rebuilds
#: Lifecycle phase names a request lane can be in.
PHASE_NAMES = ("queued", "prefill", "decode", "preempted", "rejected")


def _sorted_events(events: list[VEvent]) -> list[VEvent]:
    """Events by (cycle, emission index) — a stable virtual-time order."""
    return [ev for _, ev in sorted(enumerate(events), key=lambda t: (t[1].cycle, t[0]))]


def request_phases(events: list[VEvent]) -> dict[int, list[tuple[str, int, int]]]:
    """Rebuild per-request lifecycle phases from the event stream.

    Returns ``request_id -> [(phase, start_cycle, end_cycle), ...]``
    with phases from :data:`PHASE_NAMES`: ``queued`` (arrival or
    post-preemption wait to prefill start), ``prefill``, ``decode``,
    ``preempted`` (eviction to readmission prefill) and ``rejected``
    (zero-length marker).  Any phase still open when the stream ends is
    closed at the last observed cycle.
    """
    phases: dict[int, list[tuple[str, int, int]]] = {}
    open_phase: dict[int, tuple[str, int]] = {}
    last_cycle = 0

    def close(rid: int, cycle: int) -> None:
        started = open_phase.pop(rid, None)
        if started is not None:
            name, start = started
            phases.setdefault(rid, []).append((name, start, cycle))

    for ev in _sorted_events(events):
        last_cycle = max(last_cycle, ev.cycle)
        rid = ev.request_id
        if rid is None:
            continue
        if ev.kind == "arrive":
            open_phase[rid] = ("queued", ev.cycle)
            phases.setdefault(rid, [])
        elif ev.kind == "prefill_start":
            close(rid, ev.cycle)
            open_phase[rid] = ("prefill", ev.cycle)
        elif ev.kind == "prefill_end":
            close(rid, ev.cycle)
            open_phase[rid] = ("decode", ev.cycle)
        elif ev.kind == "preempt":
            close(rid, ev.cycle)
            open_phase[rid] = ("preempted", ev.cycle)
        elif ev.kind == "complete":
            close(rid, ev.cycle)
        elif ev.kind == "reject":
            close(rid, ev.cycle)
            phases.setdefault(rid, []).append(("rejected", ev.cycle, ev.cycle))
    for rid in sorted(open_phase):
        close(rid, last_cycle)
    return phases


# ----------------------------------------------------- Perfetto export
#: Process id of the serving-request lanes in the merged Chrome trace
#: (1 = simulated accelerator, 2 = measured host — see obs.export).
REQUEST_PID = 3

#: Instant-marker kinds rendered on the request lanes.
_INSTANT_KINDS = frozenset({"arrive", "preempt", "complete", "reject"})


def request_lane_tids(events: list[VEvent]) -> dict[int, int]:
    """The pid-3 lane (thread) id of every request seen in the stream:
    sorted request ids, numbered from 1.  One source of truth shared by
    :func:`request_track_events` and the cost flow events
    (:func:`repro.obs.costs.cost_flow_events`), so cross-layer arrows
    always bind to the right lane."""
    rids = sorted({ev.request_id for ev in events if ev.request_id is not None})
    return {rid: tid for tid, rid in enumerate(rids, start=1)}


def request_track_events(
    events: list[VEvent], clock_mhz: float = 300.0
) -> list[dict]:
    """Chrome-trace events: one lane per request, lifecycle phases as
    duration slices plus instant markers, all scaled cycles -> µs.

    Feed the result to :func:`repro.obs.export.chrome_trace` as
    ``extra_events`` so the request lanes merge with the device lanes
    (same ``clock_mhz``, hence the same time axis).  ``slo_alert``
    events land on a dedicated ``slo`` lane.
    """
    if clock_mhz <= 0:
        raise ValueError("clock_mhz must be positive")
    scale = 1.0 / clock_mhz
    ordered = _sorted_events(events)
    tid_of = request_lane_tids(events)
    tenant_of = {
        ev.request_id: ev.tenant
        for ev in ordered
        if ev.request_id is not None and ev.tenant is not None
    }
    alert_tid = len(tid_of) + 1
    out: list[dict] = [
        {
            "ph": "M",
            "pid": REQUEST_PID,
            "name": "process_name",
            "args": {"name": "serving requests (virtual)"},
        }
    ]
    for rid, tid in tid_of.items():
        lane = f"req {rid}"
        if rid in tenant_of:
            lane += f" (tenant {tenant_of[rid]})"
        out.append(
            {
                "ph": "M",
                "pid": REQUEST_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
        out.append(
            {
                "ph": "M",
                "pid": REQUEST_PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    for rid, spans in sorted(request_phases(events).items()):
        for phase, start, end in spans:
            if end <= start:
                continue
            out.append(
                {
                    "name": phase,
                    "cat": "serving",
                    "ph": "X",
                    "pid": REQUEST_PID,
                    "tid": tid_of[rid],
                    "ts": start * scale,
                    "dur": (end - start) * scale,
                    "args": {"request_id": rid, "cycles": end - start},
                }
            )
    have_alerts = False
    for ev in ordered:
        if ev.kind == "slo_alert":
            have_alerts = True
            out.append(
                {
                    "name": "slo_alert",
                    "cat": "serving",
                    "ph": "i",
                    "s": "t",
                    "pid": REQUEST_PID,
                    "tid": alert_tid,
                    "ts": ev.cycle * scale,
                    "args": dict(ev.attrs),
                }
            )
        elif ev.kind in _INSTANT_KINDS and ev.request_id is not None:
            args: dict = {"request_id": ev.request_id}
            args.update(ev.attrs)
            out.append(
                {
                    "name": ev.kind,
                    "cat": "serving",
                    "ph": "i",
                    "s": "t",
                    "pid": REQUEST_PID,
                    "tid": tid_of[ev.request_id],
                    "ts": ev.cycle * scale,
                    "args": args,
                }
            )
    if have_alerts:
        out.append(
            {
                "ph": "M",
                "pid": REQUEST_PID,
                "tid": alert_tid,
                "name": "thread_name",
                "args": {"name": "slo alerts"},
            }
        )
    return out


def device_timeline(events: list[VEvent]) -> Timeline:
    """Reconstruct a device-activity :class:`~repro.hw.trace.Timeline`
    from the event stream: a ``device.prefill`` lane with one interval
    per prefill pass and a ``device.decode`` lane with one interval per
    decode iteration.  Renders through the existing accelerator process
    of :func:`repro.obs.export.chrome_trace`, so device lanes and
    request lanes share one clock.
    """
    timeline = Timeline()
    for ev in _sorted_events(events):
        if ev.kind == "prefill_start":
            cycles = int(ev.attrs.get("cycles", 0))
            label = f"prefill:r{ev.request_id}"
            if ev.attrs.get("replay"):
                label += " (re-prefill)"
            timeline.add(
                "device.prefill", label, ev.cycle, ev.cycle + cycles, kind="compute"
            )
        elif ev.kind == "decode_iter":
            cycles = int(ev.attrs.get("cycles", 0))
            batch = ev.attrs.get("batch", 0)
            timeline.add(
                "device.decode",
                f"decode[b{batch}]",
                ev.cycle,
                ev.cycle + cycles,
                kind="compute",
            )
    return timeline


# ------------------------------------------------------------ JSONL log
def vtrace_jsonl_lines(
    events: list[VEvent], metadata: dict | None = None
) -> list[str]:
    """The schema-versioned JSONL event log: one header line, then one
    line per event in emission order.

    Every field is an integer cycle, a string or a JSON scalar from the
    event attrs — no wall-clock, no floats derived from host state — so
    two runs with the same seed produce byte-identical logs.
    """
    header: dict = {
        "type": "vtrace_header",
        "schema": EVENT_SCHEMA_VERSION,
        "events": len(events),
        "clock_domain": "fabric_cycles",
    }
    if metadata:
        header["metadata"] = metadata
    lines = [json.dumps(header, sort_keys=True)]
    for ev in events:
        record: dict = {"type": "vtrace_event", "cycle": ev.cycle, "kind": ev.kind}
        if ev.request_id is not None:
            record["request_id"] = ev.request_id
        if ev.tenant is not None:
            record["tenant"] = ev.tenant
        if ev.attrs:
            record["attrs"] = ev.attrs
        lines.append(json.dumps(record, sort_keys=True))
    return lines
