"""Exporters: Prometheus text exposition, JSONL event log, and
Chrome-trace JSON (Perfetto-loadable).

The Chrome trace merges two time sources into one view:

* the simulated accelerator — a :class:`repro.hw.trace.Timeline` whose
  events are in fabric cycles; they are converted to microseconds at
  the fabric clock and rendered as one "accelerator" process with one
  thread lane per engine (HBM channels, PSAs, vector units, host
  dispatch);
* the measured host — :class:`repro.obs.spans.SpanRecord` wall-clock
  spans, rendered as a second "host" process with one lane per Python
  thread.

Load the resulting JSON at https://ui.perfetto.dev (or
``chrome://tracing``) directly.

Everything here is duck-typed over the trace/span/metric objects so the
``obs`` package stays dependency-free and import-cycle-free.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Sequence

from repro.obs.metrics import METRIC_HELP, Histogram, MetricsRegistry

__all__ = [
    "prometheus_name",
    "prometheus_text",
    "ACCEL_PID",
    "HOST_PID",
    "engine_lane_tids",
    "chrome_trace",
    "chrome_trace_json",
    "jsonl_lines",
]


# ----------------------------------------------------------- Prometheus
def prometheus_name(name: str) -> str:
    """Dotted metric name -> Prometheus exposition name."""
    return name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP-line escaping per the Prometheus text exposition format:
    only backslash and newline (quotes stay literal, unlike labels)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    The HELP line carries the original dotted name (Prometheus names
    cannot contain dots) followed by the schema description from
    :data:`repro.obs.metrics.METRIC_HELP`.
    """
    lines: list[str] = []
    seen_header: set[str] = set()
    for inst in registry.collect():
        pname = prometheus_name(inst.name)
        if pname not in seen_header:
            seen_header.add(pname)
            help_text = _escape_help(METRIC_HELP.get(inst.name, ""))
            lines.append(f"# HELP {pname} {inst.name} {help_text}".rstrip())
            lines.append(f"# TYPE {pname} {inst.kind}")
        if isinstance(inst, Histogram):
            for bound, cum in inst.cumulative_buckets():
                le = "+Inf" if math.isinf(bound) else _format_value(bound)
                lines.append(
                    f"{pname}_bucket{_label_str(inst.labels, {'le': le})} {cum}"
                )
            lines.append(
                f"{pname}_sum{_label_str(inst.labels)} {_format_value(inst.sum)}"
            )
            lines.append(f"{pname}_count{_label_str(inst.labels)} {inst.count}")
        else:
            lines.append(
                f"{pname}{_label_str(inst.labels)} {_format_value(inst.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------- Chrome trace
#: Process ids of the merged trace: 1 = simulated accelerator (engine
#: lanes + counters), 2 = measured host (Python spans).  Public so
#: cross-layer events built elsewhere (e.g. the cost-attribution flow
#: arrows of :func:`repro.obs.costs.cost_flow_events`) can target the
#: same processes; pid 3 is the serving-request process
#: (:data:`repro.obs.vtrace.REQUEST_PID`).
ACCEL_PID = 1
HOST_PID = 2
_ACCEL_PID = ACCEL_PID
_HOST_PID = HOST_PID


def _engine_sort_key(engine: str) -> tuple:
    """HBM channels first, then PSAs, vector units, host dispatch."""
    order = ("hbm", "slr", "host")
    for rank, prefix in enumerate(order):
        if engine.startswith(prefix):
            return (rank, engine)
    return (len(order), engine)


def engine_lane_tids(engines: Iterable[str]) -> dict[str, int]:
    """The accelerator-process lane (thread) id of every engine:
    engines in :func:`_engine_sort_key` order, numbered from 1 — the
    exact assignment :func:`chrome_trace` renders, shared so events
    built outside it (flow arrows, annotations) bind to the same
    lanes."""
    ordered = sorted(set(engines), key=_engine_sort_key)
    return {engine: tid for tid, engine in enumerate(ordered, start=1)}


def chrome_trace(
    timeline=None,
    spans: Sequence | None = None,
    clock_mhz: float = 300.0,
    metadata: dict | None = None,
    counters: dict | None = None,
    extra_events: Sequence | None = None,
) -> dict:
    """Build a Chrome-trace (Perfetto-loadable) JSON object.

    ``timeline`` is a :class:`repro.hw.trace.Timeline` in fabric
    cycles; ``spans`` an iterable of completed
    :class:`repro.obs.spans.SpanRecord`.  Either may be omitted.
    ``counters`` maps a track name to ``[(cycle, value), ...]`` samples
    (e.g. from :func:`repro.hw.introspect.counter_tracks`) and renders
    as Perfetto counter tracks on the accelerator process.
    ``extra_events`` are pre-built raw Chrome-trace event dicts merged
    verbatim — the hook through which the virtual-time request lanes
    (:func:`repro.obs.vtrace.request_track_events`, already scaled to
    the same ``clock_mhz`` axis) join the device lanes in one trace.
    """
    if clock_mhz <= 0:
        raise ValueError("clock_mhz must be positive")
    events: list[dict] = []

    def meta_event(pid: int, tid: int | None, name: str, value: str, sort: int | None = None) -> None:
        ev = {"ph": "M", "pid": pid, "name": name, "args": {"name": value}}
        if tid is not None:
            ev["tid"] = tid
        events.append(ev)
        if sort is not None:
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_sort_index",
                    "args": {"sort_index": sort},
                }
            )

    if timeline is not None and timeline.events:
        meta_event(_ACCEL_PID, None, "process_name", "accelerator (simulated)")
        tid_of = engine_lane_tids(timeline.engines())
        for engine, tid in tid_of.items():
            meta_event(_ACCEL_PID, tid, "thread_name", engine, sort=tid)
        # One fabric cycle at clock_mhz MHz is (1 / clock_mhz) µs.
        scale = 1.0 / clock_mhz
        for event in timeline.events:
            events.append(
                {
                    "name": event.label,
                    "cat": event.kind,
                    "ph": "X",
                    "pid": _ACCEL_PID,
                    "tid": tid_of[event.engine],
                    "ts": event.start * scale,
                    "dur": event.duration * scale,
                    "args": {
                        "engine": event.engine,
                        "cycles": event.duration,
                        "kind": event.kind,
                    },
                }
            )

    if counters:
        if not (timeline is not None and timeline.events):
            meta_event(_ACCEL_PID, None, "process_name", "accelerator (simulated)")
        scale = 1.0 / clock_mhz
        for track, samples in counters.items():
            for cycle, value in samples:
                events.append(
                    {
                        "name": track,
                        "cat": "counter",
                        "ph": "C",
                        "pid": _ACCEL_PID,
                        "ts": cycle * scale,
                        "args": {"value": value},
                    }
                )

    span_list = list(spans or [])
    if span_list:
        meta_event(_HOST_PID, None, "process_name", "host (measured)")
        threads = sorted({rec.thread_id for rec in span_list})
        tid_of_thread = {t: tid for tid, t in enumerate(threads, start=1)}
        for t, tid in tid_of_thread.items():
            meta_event(_HOST_PID, tid, "thread_name", f"python-thread-{tid}")
        for rec in span_list:
            args = {"depth": rec.depth}
            args.update(rec.attrs)
            events.append(
                {
                    "name": rec.name,
                    "cat": "host",
                    "ph": "X",
                    "pid": _HOST_PID,
                    "tid": tid_of_thread[rec.thread_id],
                    "ts": rec.start_us,
                    "dur": rec.duration_us,
                    "args": args,
                }
            )

    if extra_events:
        events.extend(dict(ev) for ev in extra_events)

    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock_mhz": clock_mhz},
    }
    if metadata:
        trace["otherData"].update(metadata)
    return trace


def chrome_trace_json(
    timeline=None,
    spans: Sequence | None = None,
    clock_mhz: float = 300.0,
    metadata: dict | None = None,
    counters: dict | None = None,
    extra_events: Sequence | None = None,
) -> str:
    """:func:`chrome_trace`, serialized."""
    return json.dumps(
        chrome_trace(timeline, spans, clock_mhz, metadata, counters, extra_events),
        indent=None,
    )


# ----------------------------------------------------------------- JSONL
def jsonl_lines(
    registry: MetricsRegistry | None = None,
    spans: Sequence | None = None,
) -> Iterable[str]:
    """One JSON object per line: every metric sample, then every span.

    The machine-readable twin of the Prometheus exposition — greppable,
    appendable, and schema-tagged via the ``type`` field.
    """
    if registry is not None:
        for inst in registry.collect():
            record: dict = {
                "type": "metric",
                "kind": inst.kind,
                "name": inst.name,
                "labels": inst.labels,
            }
            if isinstance(inst, Histogram):
                record["count"] = inst.count
                record["sum"] = inst.sum
                record["buckets"] = [
                    ["+Inf" if math.isinf(b) else b, n]
                    for b, n in inst.cumulative_buckets()
                ]
            else:
                record["value"] = inst.value
            yield json.dumps(record, sort_keys=True)
    for rec in spans or []:
        yield json.dumps(
            {
                "type": "span",
                "name": rec.name,
                "start_us": rec.start_us,
                "duration_us": rec.duration_us,
                "depth": rec.depth,
                "attrs": rec.attrs,
            },
            sort_keys=True,
        )
