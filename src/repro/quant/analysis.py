"""Precision design-space study (the paper's Section 6.2 future work).

For each precision:

* **loads shrink** — an int8 model streams a quarter of the fp32 bytes,
  which moves the Fig 5.2 load/compute crossover toward shorter
  sequences and shortens the load-bound (small-s) latencies;
* **PEs shrink** — cheaper MACs let the PSAs unroll more rows inside
  the same LUT budget (the paper's binding resource), cutting the
  compute-bound latencies;
* **accuracy costs** — quantization error on the logits, measured by
  fake-quantizing a model and comparing against fp32.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import HardwareConfig, ModelConfig
from repro.hw.controller import LatencyModel
from repro.hw.resources import estimate_resources
from repro.hw.scheduler import Architecture
from repro.model.params import TransformerParams, init_transformer_params
from repro.model.transformer import Transformer
from repro.quant.params import dequantize_params, quantize_params
from repro.quant.schemes import FP16, FP32, INT8, Precision, fake_quantize


@dataclass(frozen=True)
class PrecisionPoint:
    """Latency / resource / feasibility summary of one precision."""

    precision: Precision
    #: Encoder weight-load time (ms) — drops with element width.
    encoder_load_ms: float
    #: Fig 5.2 crossover sequence length under this precision.
    crossover_s: int
    #: A3 latency at s=32 with the paper's 2-row PSAs.
    latency_ms_base: float
    #: Widest PSA row unroll that still fits the LUT budget.
    best_psa_rows: int
    #: A3 latency at s=32 with that widest feasible unroll.
    latency_ms_best: float
    lut_utilization_base: float


def _max_feasible_rows(
    precision: Precision, hardware: HardwareConfig, model: ModelConfig
) -> int:
    """Largest power-of-two PSA row count that fits the device."""
    best = 0
    rows = 1
    while rows <= 64:
        hw = replace(
            hardware, psa_rows=rows, bytes_per_element=precision.bytes_per_element
        )
        est = estimate_resources(
            hw,
            seq_len=32,
            d_model=model.d_model,
            d_ff=model.d_ff,
            num_softmax_units=model.num_heads,
            pe_dsp=precision.pe_dsp,
            pe_ff=precision.pe_ff,
            pe_lut=precision.pe_lut,
        )
        if est.fits():
            best = rows
        rows *= 2
    if best == 0:
        raise ValueError(f"no feasible PSA configuration at {precision.name}")
    return best


def precision_sweep(
    precisions: tuple[Precision, ...] = (FP32, FP16, INT8),
    model: ModelConfig | None = None,
    hardware: HardwareConfig | None = None,
    architecture: Architecture | str = Architecture.A3,
    s: int = 32,
) -> list[PrecisionPoint]:
    """Latency/resource consequences of each precision."""
    model = model or ModelConfig()
    base_hw = hardware or HardwareConfig()
    points = []
    for precision in precisions:
        hw = replace(base_hw, bytes_per_element=precision.bytes_per_element)
        lm = LatencyModel(model=model, hardware=hw)
        base_est = estimate_resources(
            hw,
            seq_len=s,
            d_model=model.d_model,
            d_ff=model.d_ff,
            num_softmax_units=model.num_heads,
            pe_dsp=precision.pe_dsp,
            pe_ff=precision.pe_ff,
            pe_lut=precision.pe_lut,
        )
        try:
            crossover = lm.crossover_sequence_length()
        except ValueError:
            crossover = 1  # compute exceeds load everywhere measured
        best_rows = _max_feasible_rows(precision, base_hw, model)
        best_hw = replace(
            base_hw,
            psa_rows=best_rows,
            bytes_per_element=precision.bytes_per_element,
        )
        lm_best = LatencyModel(model=model, hardware=best_hw)
        points.append(
            PrecisionPoint(
                precision=precision,
                encoder_load_ms=hw.cycles_to_ms(lm.encoder_load_cycles()),
                crossover_s=crossover,
                latency_ms_base=lm.latency_ms(s, architecture),
                best_psa_rows=best_rows,
                latency_ms_best=lm_best.latency_ms(s, architecture),
                lut_utilization_base=base_est.utilization()["LUT"],
            )
        )
    return points


@dataclass(frozen=True)
class AccuracyReport:
    """Quantization error of one precision on one model."""

    precision: Precision
    max_abs_logit_error: float
    mean_abs_logit_error: float
    top1_agreement: float
    weight_bytes_ratio: float


def accuracy_study(
    precision: Precision,
    params: TransformerParams | None = None,
    s: int = 8,
    seed: int = 0,
) -> AccuracyReport:
    """Compare fake-quantized inference against the fp32 reference."""
    if params is None:
        params = init_transformer_params(
            ModelConfig(num_encoders=2, num_decoders=1), seed=seed
        )
    cfg = params.config
    rng = np.random.default_rng(seed)
    feats = rng.standard_normal((s, cfg.d_model)).astype(np.float32)
    tokens = rng.integers(0, cfg.vocab_size, size=max(s // 2, 1))

    reference = Transformer(params).forward(feats, tokens)
    if precision.is_integer:
        quantized = quantize_params(params, precision)
        q_params = dequantize_params(quantized)
        ratio = quantized.total_weight_bytes / (params.num_elements * 4)
    else:
        # Floating narrowing: fake-quantize every array in place.
        from repro.model.params import load_params, save_params  # noqa: F401
        import copy

        def fq(x):
            return fake_quantize(x, precision)

        q_params = _map_params(params, fq)
        ratio = precision.bytes_per_element / 4.0
    q_feats = fake_quantize(feats, precision) if precision.is_integer else feats
    quant_out = Transformer(q_params).forward(q_feats.astype(np.float32), tokens)

    err = np.abs(quant_out.astype(np.float64) - reference.astype(np.float64))
    agree = float(
        np.mean(np.argmax(quant_out, axis=-1) == np.argmax(reference, axis=-1))
    )
    return AccuracyReport(
        precision=precision,
        max_abs_logit_error=float(err.max()),
        mean_abs_logit_error=float(err.mean()),
        top1_agreement=agree,
        weight_bytes_ratio=float(ratio),
    )


def _map_params(params: TransformerParams, fn) -> TransformerParams:
    """Apply ``fn`` to every weight array of a parameter set."""
    from repro.model.params import (
        AttentionParams,
        DecoderLayerParams,
        EncoderLayerParams,
        FeedForwardParams,
        LayerNormParams,
    )

    def attn(a: AttentionParams) -> AttentionParams:
        return AttentionParams(
            wq=fn(a.wq), bq=fn(a.bq), wk=fn(a.wk), bk=fn(a.bk),
            wv=fn(a.wv), bv=fn(a.bv), wo=fn(a.wo), bo=fn(a.bo),
        )

    def ffn(f: FeedForwardParams) -> FeedForwardParams:
        return FeedForwardParams(w1=fn(f.w1), b1=fn(f.b1), w2=fn(f.w2), b2=fn(f.b2))

    def norm(n: LayerNormParams) -> LayerNormParams:
        return LayerNormParams(weight=fn(n.weight), bias=fn(n.bias))

    encoders = tuple(
        EncoderLayerParams(
            mha=attn(e.mha), norm1=norm(e.norm1), ffn=ffn(e.ffn), norm2=norm(e.norm2)
        )
        for e in params.encoders
    )
    decoders = tuple(
        DecoderLayerParams(
            self_mha=attn(d.self_mha), norm1=norm(d.norm1),
            cross_mha=attn(d.cross_mha), norm2=norm(d.norm2),
            ffn=ffn(d.ffn), norm3=norm(d.norm3),
        )
        for d in params.decoders
    )
    return TransformerParams(
        config=params.config,
        encoders=encoders,
        decoders=decoders,
        embedding=fn(params.embedding),
        output_w=fn(params.output_w),
        output_b=fn(params.output_b),
    )
