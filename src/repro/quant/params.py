"""Whole-model quantization.

``quantize_params`` walks a :class:`TransformerParams`, quantizing each
2-D weight matrix with per-output-channel scales and each bias/norm
vector per-tensor; ``dequantize_params`` reconstitutes an fp32
parameter set carrying the quantization error, which runs unchanged on
the reference engine *and* the accelerator simulator — exactly how a
fixed-point FPGA deployment would behave functionally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.ops import MODEL_DTYPE
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
    LayerNormParams,
    TransformerParams,
)
from repro.quant.schemes import Precision, dequantize, quantize_symmetric


@dataclass(frozen=True)
class QuantizedArray:
    """An integer tensor plus its dequantization scale(s)."""

    q: np.ndarray
    scale: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.q.nbytes + np.asarray(self.scale).nbytes

    def to_float(self) -> np.ndarray:
        return dequantize(self.q, self.scale).astype(MODEL_DTYPE)


@dataclass(frozen=True)
class QuantizedTransformerParams:
    """All model weights in integer form, keyed by parameter path."""

    precision: Precision
    arrays: dict[str, QuantizedArray]
    config: object  # ModelConfig; kept loose to avoid import cycles

    @property
    def total_weight_bytes(self) -> int:
        return sum(a.nbytes for a in self.arrays.values())


def _quantize_matrix(x: np.ndarray, precision: Precision) -> QuantizedArray:
    """Per-output-channel for matrices, per-tensor for vectors."""
    x = np.asarray(x)
    axis = x.ndim - 1 if x.ndim >= 2 else None
    q, scale = quantize_symmetric(x, precision, axis=axis)
    return QuantizedArray(q=q, scale=scale)


_ATTN_FIELDS = ("wq", "bq", "wk", "bk", "wv", "bv", "wo", "bo")
_FFN_FIELDS = ("w1", "b1", "w2", "b2")


def quantize_params(
    params: TransformerParams, precision: Precision
) -> QuantizedTransformerParams:
    """Quantize every weight of the model to ``precision``."""
    if not precision.is_integer:
        raise ValueError(
            f"quantize_params needs an integer precision; got {precision.name}"
        )
    arrays: dict[str, QuantizedArray] = {}

    def add(prefix: str, obj, fields) -> None:
        for f in fields:
            arrays[f"{prefix}.{f}"] = _quantize_matrix(getattr(obj, f), precision)

    def add_norm(prefix: str, norm: LayerNormParams) -> None:
        arrays[f"{prefix}.weight"] = _quantize_matrix(norm.weight, precision)
        arrays[f"{prefix}.bias"] = _quantize_matrix(norm.bias, precision)

    for i, enc in enumerate(params.encoders):
        add(f"enc{i}.mha", enc.mha, _ATTN_FIELDS)
        add(f"enc{i}.ffn", enc.ffn, _FFN_FIELDS)
        add_norm(f"enc{i}.norm1", enc.norm1)
        add_norm(f"enc{i}.norm2", enc.norm2)
    for i, dec in enumerate(params.decoders):
        add(f"dec{i}.self_mha", dec.self_mha, _ATTN_FIELDS)
        add(f"dec{i}.cross_mha", dec.cross_mha, _ATTN_FIELDS)
        add(f"dec{i}.ffn", dec.ffn, _FFN_FIELDS)
        add_norm(f"dec{i}.norm1", dec.norm1)
        add_norm(f"dec{i}.norm2", dec.norm2)
        add_norm(f"dec{i}.norm3", dec.norm3)
    arrays["embedding"] = _quantize_matrix(params.embedding, precision)
    arrays["output_w"] = _quantize_matrix(params.output_w, precision)
    arrays["output_b"] = _quantize_matrix(params.output_b, precision)
    return QuantizedTransformerParams(
        precision=precision, arrays=arrays, config=params.config
    )


def save_quantized(
    quantized: QuantizedTransformerParams, path
) -> None:
    """Serialize a quantized model (integer codes + scales) to .npz."""
    import numpy as _np
    from pathlib import Path

    cfg = quantized.config
    meta = _np.array(
        [
            cfg.d_model, cfg.num_heads, cfg.d_ff, cfg.num_encoders,
            cfg.num_decoders, cfg.vocab_size, cfg.max_seq_len,
            cfg.feature_dim, quantized.precision.bits,
        ],
        dtype=_np.int64,
    )
    payload: dict[str, np.ndarray] = {"__meta__": meta}
    for name, arr in quantized.arrays.items():
        payload[f"q::{name}"] = arr.q
        payload[f"s::{name}"] = np.asarray(arr.scale)
    _np.savez_compressed(Path(path), **payload)


def load_quantized(path) -> QuantizedTransformerParams:
    """Load a model saved by :func:`save_quantized`."""
    import numpy as _np
    from pathlib import Path

    from repro.config import ModelConfig
    from repro.quant.schemes import INT8, INT16

    with _np.load(Path(path)) as data:
        meta = data["__meta__"]
        config = ModelConfig(
            d_model=int(meta[0]), num_heads=int(meta[1]), d_ff=int(meta[2]),
            num_encoders=int(meta[3]), num_decoders=int(meta[4]),
            vocab_size=int(meta[5]), max_seq_len=int(meta[6]),
            feature_dim=int(meta[7]),
        )
        bits = int(meta[8])
        precision = {8: INT8, 16: INT16}.get(bits)
        if precision is None:
            raise ValueError(f"unsupported stored bit-width: {bits}")
        arrays = {}
        for key in data.files:
            if key.startswith("q::"):
                name = key[3:]
                arrays[name] = QuantizedArray(
                    q=data[key], scale=data[f"s::{name}"]
                )
    return QuantizedTransformerParams(
        precision=precision, arrays=arrays, config=config
    )


def dequantize_params(
    quantized: QuantizedTransformerParams,
) -> TransformerParams:
    """Rebuild fp32 parameters carrying the quantization error."""
    arrays = quantized.arrays
    cfg = quantized.config

    def get(name: str) -> np.ndarray:
        return arrays[name].to_float()

    def attn(prefix: str) -> AttentionParams:
        return AttentionParams(**{f: get(f"{prefix}.{f}") for f in _ATTN_FIELDS})

    def ffn(prefix: str) -> FeedForwardParams:
        return FeedForwardParams(**{f: get(f"{prefix}.{f}") for f in _FFN_FIELDS})

    def norm(prefix: str) -> LayerNormParams:
        return LayerNormParams(
            weight=get(f"{prefix}.weight"), bias=get(f"{prefix}.bias")
        )

    encoders = tuple(
        EncoderLayerParams(
            mha=attn(f"enc{i}.mha"),
            norm1=norm(f"enc{i}.norm1"),
            ffn=ffn(f"enc{i}.ffn"),
            norm2=norm(f"enc{i}.norm2"),
        )
        for i in range(cfg.num_encoders)
    )
    decoders = tuple(
        DecoderLayerParams(
            self_mha=attn(f"dec{i}.self_mha"),
            norm1=norm(f"dec{i}.norm1"),
            cross_mha=attn(f"dec{i}.cross_mha"),
            norm2=norm(f"dec{i}.norm2"),
            ffn=ffn(f"dec{i}.ffn"),
            norm3=norm(f"dec{i}.norm3"),
        )
        for i in range(cfg.num_decoders)
    )
    return TransformerParams(
        config=cfg,
        encoders=encoders,
        decoders=decoders,
        embedding=get("embedding"),
        output_w=get("output_w"),
        output_b=get("output_b"),
    )
