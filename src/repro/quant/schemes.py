"""Quantization schemes and the per-precision hardware cost model.

Symmetric uniform quantization: ``q = clip(round(x / scale))`` with the
scale chosen so the max-magnitude value maps to the top of the integer
range.  Scales are per-tensor or per-output-channel (axis), the two
granularities FPGA Transformer accelerators commonly use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Precision:
    """A numeric format plus its per-PE fabric cost.

    PE costs extend the fitted fp32 constants of
    :mod:`repro.hw.resources`: an fp32 MAC is 1 DSP + heavy LUT
    accumulate; fp16 halves the datapath; int8 MACs pack two to a DSP48
    and need only narrow LUT adders.
    """

    name: str
    bytes_per_element: int
    #: Integer bit-width (None for floating formats).
    bits: int | None
    pe_dsp: float
    pe_ff: int
    pe_lut: int

    def __post_init__(self) -> None:
        if self.bytes_per_element not in (1, 2, 4, 8):
            raise ValueError("unsupported element width")
        if self.bits is not None and not 2 <= self.bits <= 32:
            raise ValueError("bits must be in [2, 32]")
        if self.pe_dsp < 0 or self.pe_ff < 0 or self.pe_lut < 0:
            raise ValueError("PE costs must be non-negative")

    @property
    def is_integer(self) -> bool:
        return self.bits is not None

    @property
    def qmax(self) -> int:
        if self.bits is None:
            raise ValueError(f"{self.name} is not an integer format")
        return 2 ** (self.bits - 1) - 1


FP32 = Precision("fp32", bytes_per_element=4, bits=None, pe_dsp=1.0, pe_ff=880, pe_lut=640)
FP16 = Precision("fp16", bytes_per_element=2, bits=None, pe_dsp=1.0, pe_ff=440, pe_lut=330)
INT16 = Precision("int16", bytes_per_element=2, bits=16, pe_dsp=1.0, pe_ff=260, pe_lut=180)
INT8 = Precision("int8", bytes_per_element=1, bits=8, pe_dsp=0.5, pe_ff=140, pe_lut=95)

PRECISIONS: dict[str, Precision] = {
    p.name: p for p in (FP32, FP16, INT16, INT8)
}


def _scales(x: np.ndarray, qmax: int, axis: int | None) -> np.ndarray:
    if axis is None:
        peak = np.max(np.abs(x))
        return np.asarray(max(float(peak), 1e-12) / qmax)
    reduce_axes = tuple(a for a in range(x.ndim) if a != axis % x.ndim)
    peak = np.max(np.abs(x), axis=reduce_axes, keepdims=True)
    return np.maximum(peak, 1e-12) / qmax


def quantize_symmetric(
    x: np.ndarray, precision: Precision, axis: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize to integers; returns (q, scale).

    ``axis`` selects per-channel scales along that axis (e.g. the
    output-feature axis of a weight matrix); None means per-tensor.
    """
    if not precision.is_integer:
        raise ValueError(f"cannot integer-quantize to {precision.name}")
    x = np.asarray(x, dtype=np.float64)
    scale = _scales(x, precision.qmax, axis)
    q = np.clip(np.round(x / scale), -precision.qmax, precision.qmax)
    dtype = np.int8 if precision.bits <= 8 else np.int32
    return q.astype(dtype), scale


def dequantize(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Reconstruct real values from integers and their scale(s)."""
    return np.asarray(q, dtype=np.float64) * np.asarray(scale, dtype=np.float64)


def fake_quantize(
    x: np.ndarray, precision: Precision, axis: int | None = None
) -> np.ndarray:
    """Quantize-then-dequantize (the standard inference-error model).

    For floating formats this rounds through the narrower float type;
    for integer formats it round-trips through the integer grid.
    """
    x = np.asarray(x)
    if precision.name == "fp32":
        return x.astype(np.float32, copy=True).astype(x.dtype)
    if precision.name == "fp16":
        return x.astype(np.float16).astype(x.dtype)
    q, scale = quantize_symmetric(x, precision, axis=axis)
    return dequantize(q, scale).astype(x.dtype)


def int_matmul(
    q_a: np.ndarray,
    scale_a: np.ndarray,
    q_b: np.ndarray,
    scale_b: np.ndarray,
) -> np.ndarray:
    """Integer matmul with int32 accumulation, rescaled to reals.

    This is the arithmetic an int8 PSA would perform: the product of the
    quantized operands accumulates exactly in wide integers and a single
    rescale recovers the real-valued result, equal (exactly) to
    ``dequantize(q_a) @ dequantize(q_b)`` for per-tensor scales.
    """
    q_a = np.asarray(q_a)
    q_b = np.asarray(q_b)
    if q_a.ndim != 2 or q_b.ndim != 2 or q_a.shape[1] != q_b.shape[0]:
        raise ValueError(f"bad operand shapes: {q_a.shape} @ {q_b.shape}")
    acc = q_a.astype(np.int64) @ q_b.astype(np.int64)
    scale_a = np.asarray(scale_a, dtype=np.float64)
    scale_b = np.asarray(scale_b, dtype=np.float64)
    if scale_a.size != 1:
        raise ValueError("activations must use a per-tensor scale")
    # Per-channel weight scales lie along the output axis: (1, n) or scalar.
    scale_b_row = scale_b.reshape(1, -1) if scale_b.size > 1 else scale_b
    return acc.astype(np.float64) * float(scale_a) * scale_b_row
