"""Fixed-precision (quantized) model support — the paper's stated
future work (Section 6.2): "we will explore fixed precision end-to-end
ASR models ... Fixed precision models offer lower resource utilization,
addressing our primary constraint of LUT resources.  This will enable
the development of accelerators with lower latency."

This package provides:

* :mod:`repro.quant.schemes` — symmetric uniform quantization (int8 /
  int16) with per-tensor or per-output-channel scales, plus fp16.
* :mod:`repro.quant.params` — quantize a full
  :class:`~repro.model.params.TransformerParams` and reconstitute a
  fake-quantized fp32 parameter set for inference.
* :mod:`repro.quant.analysis` — the latency / resource / accuracy
  consequences: cheaper PEs let the PSA unroll wider within the LUT
  budget, and narrower weights load faster, moving the Fig 5.2
  crossover (see ``benchmarks/test_ablation_precision.py``).
"""

from repro.quant.analysis import PrecisionPoint, precision_sweep
from repro.quant.params import (
    QuantizedTransformerParams,
    dequantize_params,
    load_quantized,
    quantize_params,
    save_quantized,
)
from repro.quant.schemes import (
    FP16,
    FP32,
    INT8,
    INT16,
    Precision,
    dequantize,
    fake_quantize,
    quantize_symmetric,
)

__all__ = [
    "PrecisionPoint",
    "precision_sweep",
    "QuantizedTransformerParams",
    "dequantize_params",
    "load_quantized",
    "quantize_params",
    "save_quantized",
    "FP16",
    "FP32",
    "INT8",
    "INT16",
    "Precision",
    "dequantize",
    "fake_quantize",
    "quantize_symmetric",
]
