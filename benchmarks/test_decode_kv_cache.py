"""KV-cached autoregressive decode vs the legacy full-prefix loop.

The synthesized hardware always runs its padded ``hw_seq_len`` pass, so
the naive decode loop pays a full decoder-stack pass per emitted token.
The KV-cached path steps a 1-row query through the fabric instead;
this benchmark pins its two contracts:

* functional — greedy transcripts are byte-identical to the legacy
  full-prefix path;
* cost — per-token fabric compute grows with the cached prefix but
  stays strictly below the full padded pass, and the whole cached
  decode is cheaper than ``steps x full pass``.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.config import ModelConfig
from repro.decoding.greedy import greedy_decode
from repro.hw.accelerator import TransformerAccelerator
from repro.model.params import init_transformer_params

HW_SEQ_LEN = 32
DECODE_TOKENS = 8


@pytest.fixture(scope="module")
def accel():
    cfg = ModelConfig(
        d_model=64,
        num_heads=2,
        d_ff=128,
        num_encoders=1,
        num_decoders=2,
        vocab_size=31,
    )
    return TransformerAccelerator(
        init_transformer_params(cfg, seed=5), hw_seq_len=HW_SEQ_LEN
    )


@pytest.fixture(scope="module")
def features(accel):
    rng = np.random.default_rng(41)
    return (
        0.5 * rng.standard_normal((HW_SEQ_LEN - 4, accel.config.d_model))
    ).astype(np.float32)


def run_cached_decode(accel, features):
    session = accel.decode_session(features)
    for step in range(DECODE_TOKENS):
        session.step(3 + step % 5)
    return session


def test_cached_step_compute(benchmark, accel, features):
    session = benchmark(run_cached_decode, accel, features)
    lm = accel.latency_model
    full_pass = sum(lm.decoder_compute_cycles(HW_SEQ_LEN))

    per_step = session.step_compute_cycles
    emit(
        "KV-cached decode: fabric compute per step (small config)",
        ["prefix length t", "cached step cycles", "full padded pass"],
        [[t + 1, c, full_pass] for t, c in enumerate(per_step)],
        float_fmt="{:.0f}",
    )
    # Per-token compute cycles strictly decrease as the prefix grows
    # shorter than hw_seq_len (equivalently: strictly increase in t)...
    assert all(b > a for a, b in zip(per_step, per_step[1:]))
    # ...and every step undercuts the padded full-prefix pass.
    assert max(per_step) < full_pass
    # Asymptotics: the whole cached decode (including the one-time
    # cross-attention K/V prefill) beats steps x full pass.
    cached_total = session.prefill_cycles + sum(per_step)
    assert cached_total < DECODE_TOKENS * full_pass


def test_greedy_transcripts_byte_identical(accel, features):
    legacy = greedy_decode(
        accel.step_fn(features, use_kv_cache=False),
        sos_id=1, eos_id=2, max_len=HW_SEQ_LEN - 1,
    )
    cached = greedy_decode(
        accel.step_fn(features, use_kv_cache=True),
        sos_id=1, eos_id=2, max_len=HW_SEQ_LEN - 1,
    )
    assert legacy.tobytes() == cached.tobytes()


def test_modeled_autoregressive_account(benchmark, accel):
    report = benchmark(accel.autoregressive_report, DECODE_TOKENS)
    d = report.details
    emit(
        "KV-cached decode: scheduled latency account",
        ["metric", "value"],
        [
            ["tokens", d["decode_tokens"]],
            ["total cycles", d["decode_total_cycles"]],
            ["per-token cycles", d["decode_per_token_cycles"]],
            ["first step cycles", d["decode_first_step_cycles"]],
            ["last step cycles", d["decode_last_step_cycles"]],
            ["steady tokens/s", d["decode_steady_tokens_per_s"]],
            ["latency (ms)", report.latency_ms],
        ],
        float_fmt="{:.2f}",
    )
    assert d["decode_total_cycles"] == report.total_cycles
    assert d["decode_first_step_cycles"] < d["decode_last_step_cycles"]
    assert d["decode_steady_tokens_per_s"] > 0
