"""Table 5.2 — resource utilization for sequence length 32."""

import pytest

from benchmarks.conftest import emit
from repro.hw.resources import estimate_resources

PAPER_USED = {"BRAM_18K": 1202, "DSP": 1348, "FF": 1191892, "LUT": 765828}
PAPER_AVAILABLE = {"BRAM_18K": 2688, "DSP": 5952, "FF": 1743360, "LUT": 871680}


def test_table_5_2(benchmark):
    est = benchmark(estimate_resources, None, 32)
    ours = est.as_dict()
    util = est.utilization()
    rows = [
        [name, PAPER_USED[name], ours[name], PAPER_AVAILABLE[name], f"{util[name]:.1%}"]
        for name in PAPER_USED
    ]
    emit(
        "Table 5.2: resource utilization at s = 32",
        ["resource", "paper used", "ours", "available", "ours util"],
        rows,
    )
    assert ours["DSP"] == pytest.approx(PAPER_USED["DSP"], rel=0.02)
    assert ours["FF"] == pytest.approx(PAPER_USED["FF"], rel=0.02)
    assert ours["LUT"] == pytest.approx(PAPER_USED["LUT"], rel=0.02)
    assert ours["BRAM_18K"] == pytest.approx(PAPER_USED["BRAM_18K"], rel=0.05)
    assert est.available == PAPER_AVAILABLE
    # Section 5.1.3/5.1.4: LUT-bound, DSPs under-utilized.
    assert est.binding_resource() == "LUT"
    assert util["DSP"] < 0.25
