"""Simulator engineering benchmarks (not a paper table).

How expensive is the simulation itself?  pytest-benchmark times the
functional fabric pass against the plain NumPy reference and the
data-free cycle model, so regressions in the simulator's own speed are
caught.  (Guides: no optimization without measuring.)
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.hw.blocks import encoder_block
from repro.hw.controller import LatencyModel
from repro.hw.kernels import Fabric
from repro.model.encoder import encoder_layer
from repro.model.params import init_transformer_params

PARAMS = init_transformer_params(ModelConfig(num_encoders=1, num_decoders=0), seed=0)
LAYER = PARAMS.encoders[0]
X = np.random.default_rng(0).standard_normal((32, 512)).astype(np.float32)
FABRIC = Fabric()


def test_functional_encoder_on_fabric(benchmark):
    """One encoder layer through the striped hardware dataflow."""
    result = benchmark(encoder_block, FABRIC, X, LAYER)
    assert result.output.shape == (32, 512)


def test_reference_encoder_numpy(benchmark):
    """The same layer through the golden model (baseline cost)."""
    out = benchmark(encoder_layer, X, LAYER)
    assert out.shape == (32, 512)


def test_cycle_model_full_stack(benchmark):
    """The data-free latency model over the full 18-block stack."""
    lm = LatencyModel()
    report = benchmark(lm.latency_report, 32, "A3")
    assert report.total_cycles > 0
