"""Section 4.2 — operational intensity (~0.25 ops/B) and the 4 GFLOP
per-sequence workload, with the roofline context."""

import pytest

from benchmarks.conftest import emit
from repro.baselines.roofline import accelerator_roofline, model_intensity_profile
from repro.config import ModelConfig


def test_operational_intensity(benchmark):
    profile = benchmark(model_intensity_profile, ModelConfig(), (1, 4, 8, 16, 32))
    rows = [
        [
            r["s"],
            r["gflops"],
            r["weight_mb"],
            r["intensity_macs_per_byte"],
            r["intensity_flops_per_byte"],
        ]
        for r in profile
    ]
    emit(
        "Section 4.2: FLOPs, weight traffic and operational intensity",
        ["s", "GFLOP", "weights (MB)", "MAC/B", "FLOP/B"],
        rows,
        float_fmt="{:.3f}",
    )
    by_s = {r["s"]: r for r in profile}
    # Paper: ~0.25 ops/B (short-sequence limit, one MAC per weight).
    assert by_s[1]["intensity_macs_per_byte"] == pytest.approx(0.25, rel=0.01)
    # Paper: ~4 GFLOP per sequence at the deployed length.
    assert by_s[32]["gflops"] == pytest.approx(4.0, rel=0.05)

    roof = accelerator_roofline()
    print(
        f"roofline: peak {roof.peak_gflops:.1f} GFLOPs/s, "
        f"bandwidth {roof.bandwidth_gbps:.1f} GB/s, "
        f"ridge {roof.ridge_point:.2f} FLOP/B -> memory-bound at 0.25"
    )
    assert roof.is_memory_bound(0.25)
