"""Ablation (paper §6.2 future work) — fixed-precision models.

The paper's closing claim: fixed precision "offers lower resource
utilization, addressing our primary constraint of LUT resources [and]
will enable the development of accelerators with lower latency."  This
bench quantifies that with the precision design-space sweep: load time,
Fig 5.2 crossover, LUT pressure, the widest feasible PSA unroll, and
the resulting latency — plus the accuracy cost on the logits.
"""

import pytest

from benchmarks.conftest import emit
from repro.quant.analysis import accuracy_study, precision_sweep
from repro.quant.schemes import FP16, INT8


def test_ablation_precision(benchmark):
    points = benchmark.pedantic(precision_sweep, rounds=1, iterations=1)
    rows = [
        [
            p.precision.name,
            p.encoder_load_ms,
            p.crossover_s,
            f"{p.lut_utilization_base:.0%}",
            p.latency_ms_base,
            p.best_psa_rows,
            p.latency_ms_best,
        ]
        for p in points
    ]
    emit(
        "Precision ablation: loads, crossover, LUTs, feasible unroll, latency",
        ["precision", "enc load ms", "crossover s", "LUT util",
         "ms @2-row", "best rows", "ms @best"],
        rows,
    )
    acc_rows = []
    for precision in (FP16, INT8):
        report = accuracy_study(precision)
        acc_rows.append(
            [
                precision.name,
                report.max_abs_logit_error,
                report.mean_abs_logit_error,
                f"{report.top1_agreement:.0%}",
                report.weight_bytes_ratio,
            ]
        )
    emit(
        "Accuracy cost (fake-quantized vs fp32 logits, 2-enc/1-dec model)",
        ["precision", "max |d logit|", "mean |d logit|", "top-1 agree", "bytes ratio"],
        acc_rows,
        float_fmt="{:.4f}",
    )

    by_name = {p.precision.name: p for p in points}
    # The future-work claims, asserted:
    assert by_name["int8"].lut_utilization_base < 0.5  # LUT pressure relieved
    assert by_name["int8"].best_psa_rows >= 8  # wider unroll feasible
    assert (
        by_name["int8"].latency_ms_best < by_name["fp32"].latency_ms_best / 2
    )  # lower latency realized
    assert by_name["int8"].crossover_s < by_name["fp32"].crossover_s
    assert accuracy_study(INT8).top1_agreement == pytest.approx(1.0)
