"""Section 4.4 / Algorithm 1 — the partially unrolled systolic array.

The paper: "we loop-unroll the systolic array structure, thereby
increasing the latency by at least ~16x while significantly reducing
the DSP and LUT utilization."  This bench schedules Algorithm 1 in the
in-repo HLS model across row-unroll factors, checks the trade-off, and
demonstrates the ARRAY_PARTITION pragma's role (Section 2.2.6).
"""

import pytest

from benchmarks.conftest import emit
from repro.hls.designs import matmul_nest, psa_design_report
from repro.hls.schedule import schedule_region


def test_sec_4_4_algorithm1(benchmark):
    points = benchmark(psa_design_report)
    rows = [
        [
            f"{p.row_unroll} x {p.col_unroll}",
            p.latency,
            p.analytic_cycles,
            f"{p.dsp:.0f}",
            p.lut,
        ]
        for p in points
    ]
    emit(
        "Algorithm 1 (PSA) schedule: HLS model vs analytic cycle model",
        ["unroll", "HLS cycles", "analytic", "DSP", "LUT"],
        rows,
    )
    by_rows = {p.row_unroll: p for p in points}
    # HLS and analytic models agree (same hardware, two viewpoints).
    for p in points:
        assert p.latency == pytest.approx(p.analytic_cycles, rel=0.10)
    # The ~16x partial-unroll trade-off: 2 rows vs a full 32-row array.
    latency_ratio = by_rows[2].latency / by_rows[32].latency
    resource_ratio = by_rows[32].lut / by_rows[2].lut
    print(f"partial unroll: {latency_ratio:.1f}x slower, "
          f"{resource_ratio:.1f}x cheaper (paper: ~16x)")
    assert latency_ratio == pytest.approx(16, rel=0.25)
    assert resource_ratio == pytest.approx(16, rel=0.01)

    # ARRAY_PARTITION is load-bearing: without it the pipeline's port
    # pressure destroys the II.
    good = schedule_region(matmul_nest(32, 64, 64, partitioned=True))
    bad = schedule_region(matmul_nest(32, 64, 64, partitioned=False))
    print(f"ARRAY_PARTITION ablation: {good.latency} -> {bad.latency} cycles "
          f"({bad.latency / good.latency:.0f}x worse); bottleneck arrays: "
          f"{sorted(bad.port_bounds)}")
    assert bad.latency > 50 * good.latency
