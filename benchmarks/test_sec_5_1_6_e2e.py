"""Section 5.1.6 — end-to-end numbers: 120.45 ms E2E latency at s=32,
36.3 ms host preprocessing, 11.88 sequences/s accelerator throughput,
1.38 GFLOPs/J vs the GPU's ~0.055 GFLOPs/J."""

import pytest

from benchmarks.conftest import emit
from repro.asr.pipeline import HostTimingModel
from repro.baselines.energy import fpga_energy_model, gpu_energy_model
from repro.baselines.gpu import GPU_ANCHORS

#: An s=32 sequence corresponds to ~1.36 s of audio through the
#: 10 ms-hop frontend and 4x conv subsampling.
AUDIO_SECONDS_FOR_S32 = 1.36


def collect(latency_model):
    accel_ms = latency_model.latency_report(32, "A3").latency_ms
    host_ms = HostTimingModel().host_ms(AUDIO_SECONDS_FOR_S32)
    fpga = fpga_energy_model()
    gpu = gpu_energy_model()
    return {
        "host_ms": host_ms,
        "accel_ms": accel_ms,
        "e2e_ms": host_ms + accel_ms,
        "throughput": 1e3 / accel_ms,
        "fpga_gflops_j": fpga.gflops_per_joule(32, accel_ms / 1e3),
        "gpu_gflops_j": gpu.gflops_per_joule(32, GPU_ANCHORS[32]),
    }


def test_sec_5_1_6(benchmark, latency_model):
    r = benchmark(collect, latency_model)
    emit(
        "Section 5.1.6: end-to-end system numbers at s = 32",
        ["metric", "paper", "ours"],
        [
            ["host preprocessing (ms)", 36.3, r["host_ms"]],
            ["accelerator latency (ms)", 84.15, r["accel_ms"]],
            ["E2E latency (ms)", 120.45, r["e2e_ms"]],
            ["throughput (seq/s)", 11.88, r["throughput"]],
            ["FPGA GFLOPs/J", 1.38, r["fpga_gflops_j"]],
            ["GPU GFLOPs/J", 0.055, r["gpu_gflops_j"]],
        ],
        float_fmt="{:.3f}",
    )
    assert r["host_ms"] == pytest.approx(36.3, rel=0.02)
    assert r["e2e_ms"] == pytest.approx(120.45, rel=0.05)
    assert r["throughput"] == pytest.approx(11.88, rel=0.08)
    assert r["fpga_gflops_j"] == pytest.approx(1.38, rel=0.10)
    assert r["gpu_gflops_j"] == pytest.approx(0.055, rel=0.10)
    assert r["fpga_gflops_j"] / r["gpu_gflops_j"] > 20
