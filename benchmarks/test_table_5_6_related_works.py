"""Table 5.6 — GFLOPs/s comparison with reference works."""

import pytest

from benchmarks.conftest import emit
from repro.baselines.related import comparison_table

PAPER = {
    "HAT [34]": (0.52, 1.0),
    "Qi et al. [29] GPU": (7.48, 14.38),
    "Qi et al. [29] FPGA": (14.47, 27.82),
    "This work": (47.23, 90.8),
}


def test_table_5_6(benchmark, latency_model):
    table = benchmark(comparison_table, 32, latency_model)
    paper_rows = list(PAPER.values())
    rows = []
    for entry, (paper_rate, paper_imp) in zip(table, paper_rows):
        rows.append(
            [
                f"{entry['name']} ({entry['platform']})",
                entry["gflops"],
                entry["latency_s"],
                paper_rate,
                entry["gflops_per_s"],
                paper_imp,
                entry["improvement"],
            ]
        )
    emit(
        "Table 5.6: performance comparison (GFLOPs/s)",
        ["work", "GFLOP", "latency s", "paper GF/s", "ours GF/s", "paper imp", "ours imp"],
        rows,
        float_fmt="{:.3f}",
    )
    ours = table[-1]
    assert ours["gflops_per_s"] == pytest.approx(47.23, rel=0.10)
    assert ours["improvement"] == pytest.approx(90.8, rel=0.10)
    # Section 5.1.7: 6.31x over the GPU of [29], 3.26x over its FPGA.
    assert ours["gflops_per_s"] / table[1]["gflops_per_s"] == pytest.approx(6.31, rel=0.10)
    assert ours["gflops_per_s"] / table[2]["gflops_per_s"] == pytest.approx(3.26, rel=0.10)
