"""Table 5.3 — design space exploration over head parallelism."""

import pytest

from benchmarks.conftest import emit
from repro.hw.dse import head_parallelism_sweep

PAPER = {8: 84.15, 4: 85.72, 2: 87.43, 1: 92.03}


def test_table_5_3(benchmark):
    points = benchmark(head_parallelism_sweep, 32)
    rows = [
        [p.parallel_heads, p.concurrent_psas_per_head, PAPER[p.parallel_heads], p.latency_ms]
        for p in points
    ]
    emit(
        "Table 5.3: parallel heads x concurrent PSAs per head (latency ms)",
        ["parallel heads", "PSAs/head", "paper ms", "ours ms"],
        rows,
    )
    latencies = [p.latency_ms for p in points]
    # Same ordering as the paper: more head parallelism is faster.
    assert latencies == sorted(latencies)
    assert latencies[0] == pytest.approx(PAPER[8], rel=0.10)
    # The tail design point runs ~15% hot in our model (it serializes
    # MM2/MM3 across head waves); see EXPERIMENTS.md.
    assert latencies[-1] == pytest.approx(PAPER[1], rel=0.20)
