"""Section 2.2.7 — the OpenCL host process flow.

Runs the staged host flow (context, program, weight upload, per-
inference DMA + kernel + readback) on the simulated runtime and checks
it agrees with the cycle model's latency report — the two views of the
machine must coincide.
"""

import pytest

from benchmarks.conftest import emit
from repro.host.flow import run_inference_flow


def test_sec_2_2_7_host_flow(benchmark, latency_model):
    report = benchmark(run_inference_flow, latency_model, 32, "A3", 4)
    emit(
        "Host flow account (4 back-to-back inferences at s = 32)",
        ["stage", "value"],
        [
            ["context + program build (s)", report.setup_s],
            ["one-time weight upload (s)", report.weight_upload_s],
            ["first inference (ms)", report.first_inference_s * 1e3],
            ["steady spacing (ms)", report.steady_spacing_s * 1e3],
            ["device memory allocated (MB)", report.allocated_bytes / 1e6],
        ],
        float_fmt="{:.3f}",
    )
    cycle_ms = latency_model.latency_report(32, "A3").latency_ms
    assert report.first_inference_s * 1e3 == pytest.approx(cycle_ms, rel=0.02)
    # Weights upload once (252 MB over PCIe), not per inference.
    assert report.weight_upload_s == pytest.approx(0.021, rel=0.05)
    assert report.steady_spacing_s <= report.first_inference_s * 1.01
    report.timeline.validate_no_engine_overlap()
