"""Table 4.2 — dimensions of the matrix multiplications MM1..MM6."""

from benchmarks.conftest import emit
from repro.hw.kernels import matmul_dims

#: Expected shapes at sequence length s, symbolically from the paper.
def paper_dims(s: int):
    return {
        "MM1": ((s, 512), (512, 64), (s, 64)),
        "MM2": ((s, 64), (64, s), (s, s)),
        "MM3": ((s, s), (s, 64), (s, 64)),
        "MM4": ((s, 512), (512, 512), (s, 512)),
        "MM5": ((s, 512), (512, 2048), (s, 2048)),
        "MM6": ((s, 2048), (2048, 512), (s, 512)),
    }


def test_table_4_2(benchmark):
    s = 32
    dims = benchmark(matmul_dims, s)
    expected = paper_dims(s)
    rows = []
    for name, (in1, in2, out) in dims.items():
        assert expected[name] == (in1, in2, out)
        rows.append([name, f"{in1}", f"{in2}", f"{out}"])
    emit(
        f"Table 4.2: matmul dimensions at s={s} (matches paper symbolically)",
        ["MatMul", "Input 1", "Input 2", "Output"],
        rows,
    )
