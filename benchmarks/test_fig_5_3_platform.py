"""Fig 5.3 — platform diagram of the Alveo U-50 setup.

The figure shows the host feeding HBM over PCIe and each SLR kernel
reading its weights from two HBM channels in parallel (Section 5.1.6,
"Other results").  The bench renders the diagram from the hardware
configuration and checks its structural facts: one kernel per SLR,
two channels per kernel, weights resident in HBM, PCIe for activations.
"""

from repro.config import HardwareConfig
from repro.hw.visualize import render_platform_diagram


def test_fig_5_3_platform(benchmark):
    hw = HardwareConfig()
    diagram = benchmark(render_platform_diagram, hw)
    print("\n=== Fig 5.3: platform diagram (simulated) ===")
    print(diagram)
    # Structural facts from the figure and Section 5.1.6:
    assert "SLR0" in diagram and "SLR1" in diagram
    assert "ch0 ch1" in diagram  # kernel 0 loads from two channels...
    assert "ch2 ch3" in diagram  # ...and kernel 1 from the other two.
    assert "HBM2" in diagram
    assert "PCIe" in diagram
    assert "inter-SLR" in diagram
    assert hw.num_slrs == 2
    assert hw.hbm_channels_per_slr == 2
