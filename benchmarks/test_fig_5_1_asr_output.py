"""Fig 5.1 — textual output from raw audio: the staged E2E flow
(data preparation -> feature generation -> decoding -> recognized
text), on the simulated accelerator with the synthetic corpus.
"""

from benchmarks.conftest import emit
from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline


def transcribe_one(paper_params):
    utt = LibriSpeechLikeDataset(seed=42).generate(1, min_words=2, max_words=2)[0]
    pipeline = AsrPipeline(paper_params, hw_seq_len=32)
    return utt, pipeline.transcribe(utt.waveform)


def test_fig_5_1(benchmark, paper_params):
    utt, result = benchmark.pedantic(
        transcribe_one, args=(paper_params,), rounds=1, iterations=1
    )
    print("\n=== Fig 5.1: textual output from raw audio (simulated) ===")
    print(f"stage 0: Data preparation     {utt.utterance_id}.wav "
          f"({utt.duration_s:.2f} s @ 16 kHz)")
    print(f"stage 1: Feature Generation   80-dim fbank -> conv subsample "
          f"-> s = {result.sequence_length}")
    print(f"stage 3: Decoding             architecture A3, "
          f"{result.accelerator_ms:.2f} ms on the accelerator")
    print(f"Recognized text: _{result.espnet_text}")
    print("Finished")
    emit(
        "latency account",
        ["stage", "ms"],
        [
            ["host (modeled)", result.modeled_host_ms],
            ["host (measured here)", result.measured_host_ms],
            ["accelerator", result.accelerator_ms],
            ["E2E (modeled)", result.e2e_ms],
        ],
    )
    # The weights are random (no trained LibriSpeech model exists in
    # this environment), so the *text* is meaningless — the assertions
    # pin the flow: a transcript is produced and every stage is timed.
    assert isinstance(result.espnet_text, str)
    assert result.sequence_length <= 32
    assert result.accelerator_ms > 0
    assert result.e2e_ms > result.accelerator_ms
