"""Table 5.5 — latency improvement over the NVIDIA RTX 3080 Ti GPU."""

import pytest

from benchmarks.conftest import emit
from repro.baselines.gpu import GPU_ANCHORS, GpuLatencyModel

PAPER_IMPROVEMENT = {4: 4.01, 8: 5.4, 16: 6.3, 20: 9.39, 24: 12.1, 32: 15.5}


def compute_speedups(latency_model):
    gpu = GpuLatencyModel()
    fpga_s = latency_model.latency_report(32, "A3").latency_ms / 1e3
    return {s: gpu.speedup_over(s, fpga_s) for s in GPU_ANCHORS}


def test_table_5_5(benchmark, latency_model):
    speedups = benchmark(compute_speedups, latency_model)
    rows = [
        [s, GPU_ANCHORS[s], PAPER_IMPROVEMENT[s], speedups[s]]
        for s in sorted(GPU_ANCHORS)
    ]
    emit(
        "Table 5.5: GPU latency vs FPGA",
        ["s", "GPU s (paper)", "paper speedup", "ours speedup"],
        rows,
    )
    for s, paper in PAPER_IMPROVEMENT.items():
        assert speedups[s] == pytest.approx(paper, rel=0.15)
    average = sum(speedups.values()) / len(speedups)
    print(f"average speedup: {average:.1f}x (paper: 8.8x)")
    assert average == pytest.approx(8.8, rel=0.15)
