"""Table 4.1 — weight matrices read for an encoder-decoder stack."""

from benchmarks.conftest import emit
from repro.analysis.inventory import weight_inventory
from repro.config import ModelConfig

#: (count, dims) exactly as printed in the paper's Table 4.1.
PAPER = {
    "W_Q/K/V": (576, "512 x 64"),
    "B_Q/K/V": (576, "1 x 64"),
    "W_A": (24, "512 x 512"),
    "B_A": (24, "1 x 512"),
    "L_N": (84, "1 x 512"),
    "W_1F": (18, "512 x 2048"),
    "B_1F": (18, "1 x 2048"),
    "W_2F": (18, "2048 x 512"),
    "B_2F": (18, "1 x 512"),
}


def test_table_4_1(benchmark):
    rows = benchmark(weight_inventory, ModelConfig())
    table = []
    for row in rows:
        paper_count, paper_dims = PAPER[row.name]
        table.append([row.name, paper_count, row.count, paper_dims, row.dims])
        assert row.count == paper_count
        assert row.dims == paper_dims
    emit(
        "Table 4.1: weight matrices per encoder-decoder stack",
        ["matrix", "paper count", "ours", "paper dims", "ours dims"],
        table,
    )
