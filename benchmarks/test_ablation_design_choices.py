"""Ablations of the design choices DESIGN.md calls out:

* the **pipelined partial-product adders** (Fig 4.3: ``8 t_PSA + t_ADD``
  instead of ``8 t_PSA + 7 t_ADD``),
* the **double-buffered prefetch** of A2 (one buffer degrades to
  load-after-compute; more than two buys nothing on a single channel),
* the **dual-SLR fabric** (all eight PSAs on one SLR halves the
  parallel width of MM4/MM5/MM6).
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import emit
from repro.config import HardwareConfig
from repro.hw.controller import LatencyModel
from repro.hw.scheduler import schedule_a2


def run_ablations(latency_model):
    base = latency_model
    results = {}

    # --- pipelined adders off
    hw_naive = replace(base.hardware, pipelined_adders=False)
    lm_naive = LatencyModel(hardware=hw_naive, calibration=base.calibration)
    results["adder"] = {
        "pipelined_ms": base.latency_ms(32, "A3"),
        "naive_ms": lm_naive.latency_ms(32, "A3"),
    }

    # --- prefetch buffer count (A2, load-bound s = 4)
    blocks = base.build_blocks(4, "A2")
    overhead = base.calibration.block_overhead_cycles
    results["buffers"] = {
        nb: schedule_a2(blocks, overhead, num_weight_buffers=nb).total_cycles
        / (base.hardware.clock_mhz * 1e3)
        for nb in (1, 2, 3)
    }

    # --- single-SLR fabric (same 8 PSAs but half the fan-out width is
    # irrelevant; the honest single-SLR point has 4 PSAs and no ISC)
    hw_single = replace(base.hardware, num_slrs=1, psas_per_slr=4)
    lm_single = LatencyModel(hardware=hw_single, calibration=base.calibration)
    results["slr"] = {
        "dual_ms": base.latency_ms(32, "A3"),
        "single_ms": lm_single.latency_ms(32, "A3"),
    }
    return results


def test_ablation_design_choices(benchmark, latency_model):
    r = benchmark(run_ablations, latency_model)

    emit(
        "Ablation: pipelined partial-product adders (A3 @ s=32)",
        ["variant", "latency ms"],
        [
            ["pipelined (Fig 4.3)", r["adder"]["pipelined_ms"]],
            ["naive folds", r["adder"]["naive_ms"]],
        ],
    )
    emit(
        "Ablation: A2 weight-buffer count (load-bound, s=4)",
        ["buffers", "latency ms"],
        [[nb, ms] for nb, ms in sorted(r["buffers"].items())],
    )
    emit(
        "Ablation: dual-SLR vs single-SLR fabric (A3 @ s=32)",
        ["fabric", "latency ms"],
        [
            ["2 SLRs x 4 PSAs (paper)", r["slr"]["dual_ms"]],
            ["1 SLR x 4 PSAs", r["slr"]["single_ms"]],
        ],
    )

    # Pipelining the adders helps, and only modestly (it hides folds,
    # not PSA passes).
    assert r["adder"]["naive_ms"] > r["adder"]["pipelined_ms"]
    assert r["adder"]["naive_ms"] < r["adder"]["pipelined_ms"] * 1.2
    # One buffer serializes like A1; two capture almost all the gain;
    # a third adds nothing on one load channel.
    assert r["buffers"][1] > r["buffers"][2]
    assert r["buffers"][3] == pytest.approx(r["buffers"][2], rel=0.01)
    # Halving the fabric roughly doubles compute-bound latency.
    ratio = r["slr"]["single_ms"] / r["slr"]["dual_ms"]
    assert 1.5 < ratio < 2.6
