"""Shared benchmark fixtures and reporting helpers.

Every file in this directory regenerates one table or figure of the
paper's evaluation (see DESIGN.md's experiment index).  Each benchmark
times the simulator run with pytest-benchmark and prints a
paper-vs-measured table; assertions pin the reproduction tolerances
recorded in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.hw.controller import LatencyModel
from repro.model.params import init_transformer_params


@pytest.fixture(scope="session")
def latency_model() -> LatencyModel:
    """The calibrated full-size (12 enc / 6 dec) cycle model."""
    return LatencyModel()


@pytest.fixture(scope="session")
def paper_params():
    """Random fp32 weights at the paper's full dimensions."""
    return init_transformer_params(seed=2023)


def emit(title: str, headers, rows, float_fmt: str = "{:.2f}") -> None:
    """Print a captioned ASCII table into the benchmark log."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows, float_fmt=float_fmt))
