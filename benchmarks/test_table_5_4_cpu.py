"""Table 5.4 — latency improvement over the Intel Xeon E5-2640 CPU.

The hardware is synthesized for s = 32; shorter inputs are padded, so
the accelerator-side latency is constant across input lengths
(Section 5.1.5).  A real NumPy CPU measurement on this machine is
printed alongside for grounding.
"""

import pytest

from benchmarks.conftest import emit
from repro.baselines.cpu import CPU_ANCHORS, CpuLatencyModel, MeasuredCpuBaseline
from repro.config import ModelConfig

PAPER_IMPROVEMENT = {4: 4.75, 8: 13.1, 16: 36.8, 20: 40.5, 24: 45.2, 32: 53.5}


def compute_speedups(latency_model):
    cpu = CpuLatencyModel()
    fpga_s = latency_model.latency_report(32, "A3").latency_ms / 1e3
    return {s: cpu.speedup_over(s, fpga_s) for s in CPU_ANCHORS}, fpga_s


def test_table_5_4(benchmark, latency_model):
    (speedups, fpga_s) = benchmark(compute_speedups, latency_model)
    # Ground with one real NumPy measurement (2-layer scaled depth to
    # keep the benchmark quick; reported, not asserted).
    measured = MeasuredCpuBaseline(
        ModelConfig(num_encoders=2, num_decoders=1)
    ).median_latency_s(32, repeats=1)
    rows = [
        [s, CPU_ANCHORS[s], PAPER_IMPROVEMENT[s], speedups[s]]
        for s in sorted(CPU_ANCHORS)
    ]
    emit(
        f"Table 5.4: CPU latency vs FPGA ({fpga_s * 1e3:.2f} ms simulated; "
        f"local NumPy 2-enc/1-dec stack: {measured * 1e3:.0f} ms @ s=32)",
        ["s", "CPU s (paper)", "paper speedup", "ours speedup"],
        rows,
    )
    for s, paper in PAPER_IMPROVEMENT.items():
        assert speedups[s] == pytest.approx(paper, rel=0.15)
    average = sum(speedups.values()) / len(speedups)
    print(f"average speedup: {average:.1f}x (paper: 32x)")
    assert average == pytest.approx(32.0, rel=0.15)
