"""Fig 5.2 — load vs compute time of one MHA + FFN block across s;
the paper's crossover sits at s > 18."""

from benchmarks.conftest import emit


def sweep(latency_model):
    return {
        s: latency_model.mha_ffn_load_compute(s) for s in range(2, 41, 2)
    }


def test_fig_5_2(benchmark, latency_model):
    series = benchmark(sweep, latency_model)
    rows = [
        [s, load, compute, "compute" if compute > load else "load"]
        for s, (load, compute) in sorted(series.items())
    ]
    emit(
        "Fig 5.2: load vs compute time (ms) of one MHA + FFN block",
        ["s", "load ms", "compute ms", "bound by"],
        rows,
    )
    # Load is flat; compute rises monotonically.
    loads = [v[0] for v in series.values()]
    computes = [series[s][1] for s in sorted(series)]
    assert max(loads) - min(loads) < 1e-9
    assert computes == sorted(computes)
    # Paper: compute exceeds load for s > 18.
    crossover = latency_model.crossover_sequence_length()
    print(f"crossover: compute > load from s = {crossover} (paper: s > 18)")
    assert crossover == 19
