"""Section 5.1.1 — WER of the E2E system (paper: ~9.5% on LibriSpeech).

LibriSpeech and the ESPnet-trained model are unavailable here, so the
experiment is reproduced in spirit (DESIGN.md substitutions): a
scaled-down Transformer with the identical architecture (plus learned
positional embeddings standing in for the conv front-end's positional
information) is trained from scratch on the synthetic
grapheme-acoustics corpus and evaluated with the same greedy decoding +
WER scoring the full pipeline uses.  Held-out utterances use *unseen
noise realizations* of lexicon words, the analog of evaluating on a
held-out same-distribution set.

Acceptance criterion (shape): training drives held-out WER from the
untrained >80% down into the low band (<25%) the paper's system
occupies.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.asr.dataset import LibriSpeechLikeDataset, Utterance
from repro.config import ModelConfig
from repro.decoding.vocab import CharVocabulary
from repro.frontend.features import FrontendConfig, LogMelFrontend
from repro.train.layers import TrainableTransformer
from repro.train.trainer import Trainer, TrainingConfig

VOCAB = CharVocabulary()
TOY = ModelConfig(
    d_model=32,
    num_heads=2,
    d_ff=64,
    num_encoders=1,
    num_decoders=1,
    vocab_size=len(VOCAB),
    feature_dim=20,
)
LEXICON = ("the", "cat", "sat", "on", "a", "mat", "dog", "ran")


def make_feature_fn(pool: int = 2, seed: int = 0):
    """20-dim log-mel, mean-pooled in time, projected to d_model."""
    frontend = LogMelFrontend(FrontendConfig(num_mel_filters=TOY.feature_dim))
    rng = np.random.default_rng(seed)
    proj = rng.standard_normal((TOY.feature_dim, TOY.d_model)) / np.sqrt(
        TOY.feature_dim
    )

    def feature_fn(waveform):
        feats = frontend(waveform)
        pooled = feats[: feats.shape[0] // pool * pool].reshape(
            -1, pool, TOY.feature_dim
        ).mean(axis=1)
        return pooled @ proj

    return feature_fn


def run_wer_study():
    dataset = LibriSpeechLikeDataset(seed=7, lexicon=LEXICON)
    train = dataset.generate(60, min_words=1, max_words=2)
    # Held-out: every lexicon word under noise seeds never trained on.
    test = [
        Utterance(f"test-{i}", 0, w, dataset.synthesize(w, utterance_seed=10_000 + i))
        for i, w in enumerate(LEXICON)
    ]
    model = TrainableTransformer(TOY, seed=1, use_positional=True)
    trainer = Trainer(
        model,
        VOCAB,
        make_feature_fn(),
        # 4e-3 decayed to ~3e-4 over 300 epochs; without the decay the
        # per-utterance Adam updates oscillate and never settle.
        TrainingConfig(
            epochs=300, learning_rate=4e-3, lr_decay=0.9914, label_smoothing=0.0
        ),
    )
    untrained_wer = trainer.evaluate_wer(test)
    history = trainer.train(train)
    train_wer = trainer.evaluate_wer(train)
    test_wer = trainer.evaluate_wer(test)

    # Post-training int8 quantization of every trained weight — the
    # paper's Section 6.2 hope is fixed precision "with no loss of
    # accuracy"; we measure the WER after fake-quantizing in place.
    from repro.quant.schemes import INT8, fake_quantize

    for p in model.parameters():
        p.data = fake_quantize(p.data, INT8)
    quantized_test_wer = trainer.evaluate_wer(test)
    return {
        "untrained_wer": untrained_wer,
        "train_wer": train_wer,
        "test_wer": test_wer,
        "int8_test_wer": quantized_test_wer,
        "first_loss": history[0],
        "final_loss": history[-1],
    }


def test_sec_5_1_1_wer(benchmark):
    result = benchmark.pedantic(run_wer_study, rounds=1, iterations=1)
    emit(
        "Section 5.1.1: WER study (synthetic substitution; paper: 9.5% "
        "on LibriSpeech with the full-size ESPnet model)",
        ["metric", "value"],
        [
            ["untrained held-out WER", result["untrained_wer"]],
            ["trained train WER", result["train_wer"]],
            ["trained held-out WER", result["test_wer"]],
            ["int8-quantized held-out WER", result["int8_test_wer"]],
            ["first epoch loss", result["first_loss"]],
            ["final epoch loss", result["final_loss"]],
        ],
        float_fmt="{:.3f}",
    )
    assert result["final_loss"] < result["first_loss"] / 10
    assert result["untrained_wer"] > 0.8  # random model transcribes garbage
    assert result["train_wer"] < 0.15
    assert result["test_wer"] < 0.25
    # Section 6.2: fixed precision with (essentially) no accuracy loss.
    assert result["int8_test_wer"] <= result["test_wer"] + 0.15
