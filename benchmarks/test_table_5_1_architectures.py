"""Table 5.1 — architecture-wise latency for s = 4, 8, 16, 32."""

import pytest

from benchmarks.conftest import emit

PAPER = {
    4: {"A1": 65.87, "A2": 53.45, "A3": 33.92},
    8: {"A1": 75.57, "A2": 54.5, "A3": 39.9},
    16: {"A1": 98.14, "A2": 56.27, "A3": 52.59},
    32: {"A1": 122.8, "A2": 84.15, "A3": 84.15},
}


def run_sweep(latency_model):
    return {
        s: {a: latency_model.latency_ms(s, a) for a in ("A1", "A2", "A3")}
        for s in PAPER
    }


def test_table_5_1(benchmark, latency_model):
    measured = benchmark(run_sweep, latency_model)
    rows = []
    for s in sorted(PAPER):
        for arch in ("A1", "A2", "A3"):
            paper = PAPER[s][arch]
            ours = measured[s][arch]
            paper_imp = PAPER[s]["A1"] / paper
            our_imp = measured[s]["A1"] / ours
            rows.append([s, arch, paper, ours, paper_imp, our_imp])
    emit(
        "Table 5.1: latency (ms) and improvement over A1 per architecture",
        ["s", "arch", "paper ms", "ours ms", "paper imp", "ours imp"],
        rows,
    )
    for s in PAPER:
        for arch in ("A1", "A2", "A3"):
            tol = 0.15 if (s, arch) == (32, "A1") else 0.08
            assert measured[s][arch] == pytest.approx(PAPER[s][arch], rel=tol)
    # Headline claim: A3 improves 1.46x - 1.94x over A1.
    improvements = [measured[s]["A1"] / measured[s]["A3"] for s in PAPER]
    assert min(improvements) > 1.4
    assert max(improvements) < 2.2
