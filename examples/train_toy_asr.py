#!/usr/bin/env python
"""Train a scaled-down E2E ASR Transformer on the synthetic corpus and
measure WER (the Section 5.1.1 study, substituted per DESIGN.md), then
deploy the trained weights onto the accelerator simulator.

    python examples/train_toy_asr.py          (~2-3 minutes on a laptop)
"""

import numpy as np

from repro.asr.dataset import LibriSpeechLikeDataset, Utterance
from repro.config import ModelConfig
from repro.decoding.vocab import CharVocabulary
from repro.frontend.features import FrontendConfig, LogMelFrontend
from repro.hw.accelerator import TransformerAccelerator
from repro.train.layers import TrainableTransformer
from repro.train.trainer import Trainer, TrainingConfig

VOCAB = CharVocabulary()
TOY = ModelConfig(
    d_model=32, num_heads=2, d_ff=64, num_encoders=1, num_decoders=1,
    vocab_size=len(VOCAB), feature_dim=20,
)
LEXICON = ("the", "cat", "sat", "on", "a", "mat", "dog", "ran")


def make_feature_fn(pool: int = 2, seed: int = 0):
    frontend = LogMelFrontend(FrontendConfig(num_mel_filters=TOY.feature_dim))
    rng = np.random.default_rng(seed)
    proj = rng.standard_normal((TOY.feature_dim, TOY.d_model)) / np.sqrt(
        TOY.feature_dim
    )

    def feature_fn(waveform):
        feats = frontend(waveform)
        pooled = feats[: feats.shape[0] // pool * pool].reshape(
            -1, pool, TOY.feature_dim
        ).mean(axis=1)
        return pooled @ proj

    return feature_fn


def main() -> None:
    dataset = LibriSpeechLikeDataset(seed=7, lexicon=LEXICON)
    train = dataset.generate(60, min_words=1, max_words=2)
    test = [
        Utterance(f"test-{i}", 0, w, dataset.synthesize(w, 10_000 + i))
        for i, w in enumerate(LEXICON)
    ]
    print(f"corpus: {len(train)} training utterances, "
          f"{len(test)} held-out words (unseen noise)")

    model = TrainableTransformer(TOY, seed=1, use_positional=True)
    trainer = Trainer(
        model,
        VOCAB,
        make_feature_fn(),
        TrainingConfig(
            epochs=300, learning_rate=4e-3, lr_decay=0.9914,
            label_smoothing=0.0, log_every=50,
        ),
    )
    print(f"untrained held-out WER: {trainer.evaluate_wer(test):.1%}")
    trainer.train(train)
    print(f"trained train WER:      {trainer.evaluate_wer(train):.1%}")
    print(f"trained held-out WER:   {trainer.evaluate_wer(test):.1%} "
          f"(paper reports 9.5% for the full-size LibriSpeech model)")

    print("\nheld-out transcriptions (trainable model):")
    for utt in test:
        hyp = trainer.greedy_transcribe(trainer.feature_fn(utt.waveform))
        mark = "ok " if hyp == utt.transcript else "ERR"
        print(f"  [{mark}] {utt.transcript!r:10} -> {hyp!r}")

    # Deploy the trained weights onto the accelerator simulator.  The
    # learned positional embeddings live outside the exported core, so
    # fold them into the features / compare encoder-only behaviour.
    params = model.export_params()
    accel = TransformerAccelerator(params, hw_seq_len=32)
    feats = make_feature_fn()(test[0].waveform)
    projected = model.project_features(feats) + model.enc_pos.data[: feats.shape[0]]
    out = accel.forward(projected.astype(np.float32), np.array([VOCAB.sos_id]))
    print(f"\ntrained weights deployed on the accelerator simulator: "
          f"encoder memory {out.memory.shape}, "
          f"predicted latency {out.report.latency_ms:.2f} ms "
          f"({out.report.architecture.value})")


if __name__ == "__main__":
    main()
