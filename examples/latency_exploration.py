#!/usr/bin/env python
"""Latency exploration: Table 5.1 and Fig 5.2.

    python examples/latency_exploration.py

Sweeps the A1/A2/A3 load-compute overlap architectures over sequence
lengths, prints the Table 5.1 reproduction, locates the Fig 5.2
load/compute crossover, and draws ASCII Gantt charts of the three
schedules (Figs 4.8-4.10).
"""

from repro.analysis.report import format_table
from repro.hw.controller import LatencyModel
from repro.hw.visualize import render_gantt

PAPER = {
    4: {"A1": 65.87, "A2": 53.45, "A3": 33.92},
    8: {"A1": 75.57, "A2": 54.5, "A3": 39.9},
    16: {"A1": 98.14, "A2": 56.27, "A3": 52.59},
    32: {"A1": 122.8, "A2": 84.15, "A3": 84.15},
}


def main() -> None:
    lm = LatencyModel()

    print("Table 5.1 — architecture-wise latency (ms)")
    rows = []
    for s in sorted(PAPER):
        for arch in ("A1", "A2", "A3"):
            ours = lm.latency_ms(s, arch)
            rows.append([s, arch, PAPER[s][arch], ours,
                         f"{100 * (ours / PAPER[s][arch] - 1):+.1f}%"])
    print(format_table(["s", "arch", "paper ms", "model ms", "err"], rows))

    print("\nFig 5.2 — load vs compute of one MHA + FFN block (ms)")
    rows = []
    for s in range(2, 41, 4):
        load, compute = lm.mha_ffn_load_compute(s)
        rows.append([s, load, compute, "compute" if compute > load else "load"])
    print(format_table(["s", "load", "compute", "bound by"], rows))
    print(f"crossover: compute exceeds load from s = "
          f"{lm.crossover_sequence_length()} (paper: s > 18)")

    print("\nSchedule Gantt charts at s = 8 (load-bound regime), "
          "'=' load / '#' compute:")
    for arch in ("A1", "A2", "A3"):
        result = lm.latency_report(8, arch).schedule
        print(f"\n--- {arch}: {lm.latency_ms(8, arch):.2f} ms, "
              f"stall {result.stall_cycles / 300e3:.2f} ms ---")
        print(render_gantt(result.timeline, width=96))


if __name__ == "__main__":
    main()
