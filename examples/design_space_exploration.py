#!/usr/bin/env python
"""Design-space exploration: Tables 5.2 and 5.3 plus the PSA-rows sweep.

    python examples/design_space_exploration.py

Reproduces the head-parallelism DSE (Table 5.3), the resource
utilization estimate (Table 5.2) and the Section 5.1.4 observation that
wider systolic-array unrolling is LUT-infeasible on the U50.
"""

from repro.analysis.report import format_table
from repro.hw.dse import (
    best_synthesizable,
    head_parallelism_sweep,
    pareto_frontier,
    psa_dimension_sweep,
    psa_grid_sweep,
)
from repro.hw.resources import estimate_resources

PAPER_53 = {8: 84.15, 4: 85.72, 2: 87.43, 1: 92.03}
PAPER_52 = {"BRAM_18K": 1202, "DSP": 1348, "FF": 1191892, "LUT": 765828}


def main() -> None:
    print("Table 5.3 — head parallelism vs concurrent PSAs per head (s=32)")
    points = head_parallelism_sweep(s=32)
    rows = [
        [p.parallel_heads, p.concurrent_psas_per_head,
         PAPER_53[p.parallel_heads], p.latency_ms]
        for p in points
    ]
    print(format_table(
        ["parallel heads", "PSAs/head", "paper ms", "model ms"], rows
    ))

    print("\nTable 5.2 — resource utilization at s = 32")
    est = estimate_resources(seq_len=32)
    util = est.utilization()
    rows = [
        [name, PAPER_52[name], est.as_dict()[name], f"{util[name]:.1%}"]
        for name in PAPER_52
    ]
    print(format_table(["resource", "paper", "model", "util"], rows))
    print(f"binding resource: {est.binding_resource()} "
          f"(paper: LUT-limited, DSPs under 25%)")

    print("\nPSA row-unroll sweep (Section 5.1.4): latency vs feasibility")
    sweep = psa_dimension_sweep(rows_options=(1, 2, 4, 8, 16), s=32)
    rows = [
        [p.psa_rows, p.psa_cols, p.latency_ms,
         f"{p.resources.utilization()['LUT']:.0%}",
         "yes" if p.synthesizable else "NO (over budget)"]
        for p in sweep
    ]
    print(format_table(
        ["PSA rows", "PSA cols", "latency ms", "LUT util", "synthesizable"], rows
    ))
    best = best_synthesizable(sweep)
    print(f"best feasible design: {best.psa_rows} x {best.psa_cols} PSAs "
          f"at {best.latency_ms:.2f} ms — the paper's chosen 2 x 64 point")

    print("\nFull 2-D grid sweep: latency/LUT Pareto frontier")
    grid = psa_grid_sweep()
    rows = [
        [f"{p.psa_rows} x {p.psa_cols}", p.latency_ms,
         f"{p.resources.utilization()['LUT']:.0%}"]
        for p in pareto_frontier(grid)
    ]
    print(format_table(["PSA grid", "latency ms", "LUT util"], rows))
    print("The paper's 2 x 64 point sits within ~8% of the model's "
          "frontier; equal-PE grids (e.g. 4 x 32) are near-equivalent, "
          "matching the paper's account of choosing experimentally.")


if __name__ == "__main__":
    main()
