#!/usr/bin/env python
"""HLS pragma study: Algorithm 1 through the in-repo Vitis-HLS model.

    python examples/hls_pragma_study.py

Expresses the paper's Algorithm 1 (the partially unrolled systolic
array) as a pragma-annotated loop nest, schedules it, and shows:

* the ~16x latency-for-resources partial-unroll trade-off (Section 4.4),
* why ARRAY_PARTITION is load-bearing (Section 2.2.6),
* agreement between the HLS schedule and the analytic PSA cycle model
  used everywhere else in the simulator.
"""

from repro.analysis.report import format_table
from repro.hls.designs import matmul_nest, psa_design_report
from repro.hls.schedule import schedule_region


def main() -> None:
    print("Algorithm 1 scheduled across row-unroll factors "
          "(s=32, m=64, n=64 tile):")
    points = psa_design_report()
    rows = [
        [
            f"{p.row_unroll} x {p.col_unroll}",
            p.latency,
            p.analytic_cycles,
            f"{p.dsp:.0f}",
            p.lut,
            f"{points[0].latency / p.latency:.1f}x",
        ]
        for p in points
    ]
    print(format_table(
        ["PSA grid", "HLS cycles", "analytic", "DSP", "LUT", "speedup vs 1-row"],
        rows,
    ))
    two = next(p for p in points if p.row_unroll == 2)
    full = next(p for p in points if p.row_unroll == 32)
    print(f"\npartial unroll (the paper's choice): "
          f"{two.latency / full.latency:.1f}x the latency of a full 32-row "
          f"array for {full.lut / two.lut:.0f}x fewer LUTs (paper: ~16x)")

    print("\nARRAY_PARTITION ablation (2 x 64 design):")
    good = schedule_region(matmul_nest(32, 64, 64, partitioned=True))
    bad = schedule_region(matmul_nest(32, 64, 64, partitioned=False))
    print(format_table(
        ["variant", "cycles", "port-bound arrays"],
        [
            ["partitioned (COMPLETE)", good.latency, "-"],
            ["unpartitioned BRAM", bad.latency,
             ", ".join(f"{k} (II>={v})" for k, v in sorted(bad.port_bounds.items()))],
        ],
    ))
    print(f"-> without the pragma the pipeline II collapses and the kernel "
          f"runs {bad.latency / good.latency:.0f}x slower.")


if __name__ == "__main__":
    main()
