#!/usr/bin/env python
"""Noise-robustness study of the trained toy recognizer.

    python examples/noise_robustness.py          (~2-3 minutes)

The paper motivates Transformer ASR partly by robustness research
("handling noise and low-resource data", Section 2.1.3).  This study
trains the toy model once at the corpus's nominal noise level, then
evaluates held-out WER at increasing additive-noise levels — the
classic train/test mismatch curve.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.asr.dataset import LibriSpeechLikeDataset, Utterance
from repro.config import ModelConfig
from repro.decoding.vocab import CharVocabulary
from repro.frontend.audio import SynthesisConfig
from repro.frontend.features import FrontendConfig, LogMelFrontend
from repro.train.layers import TrainableTransformer
from repro.train.trainer import Trainer, TrainingConfig

VOCAB = CharVocabulary()
TOY = ModelConfig(
    d_model=32, num_heads=2, d_ff=64, num_encoders=1, num_decoders=1,
    vocab_size=len(VOCAB), feature_dim=20,
)
LEXICON = ("the", "cat", "sat", "on", "a", "mat", "dog", "ran")


def make_feature_fn(pool: int = 2, seed: int = 0):
    frontend = LogMelFrontend(FrontendConfig(num_mel_filters=TOY.feature_dim))
    rng = np.random.default_rng(seed)
    proj = rng.standard_normal((TOY.feature_dim, TOY.d_model)) / np.sqrt(
        TOY.feature_dim
    )

    def feature_fn(waveform):
        feats = frontend(waveform)
        pooled = feats[: feats.shape[0] // pool * pool].reshape(
            -1, pool, TOY.feature_dim
        ).mean(axis=1)
        return pooled @ proj

    return feature_fn


def main() -> None:
    dataset = LibriSpeechLikeDataset(seed=7, lexicon=LEXICON)
    train = dataset.generate(60, min_words=1, max_words=2)
    print(f"training on {len(train)} utterances at noise level "
          f"{dataset.synthesis.noise_level} ...")
    model = TrainableTransformer(TOY, seed=1, use_positional=True)
    trainer = Trainer(
        model, VOCAB, make_feature_fn(),
        TrainingConfig(epochs=300, learning_rate=4e-3, lr_decay=0.9914,
                       label_smoothing=0.0),
    )
    trainer.train(train)
    print(f"train WER: {trainer.evaluate_wer(train):.1%}")

    rows = []
    for noise in (0.0, 0.02, 0.05, 0.1, 0.2, 0.4):
        synth = SynthesisConfig(noise_level=noise)
        noisy = LibriSpeechLikeDataset(seed=7, lexicon=LEXICON, synthesis=synth)
        test = [
            Utterance(f"n{noise}-{i}", 0, w, noisy.synthesize(w, 20_000 + i))
            for i, w in enumerate(LEXICON)
        ]
        wer = trainer.evaluate_wer(test)
        rows.append([noise, f"{wer:.1%}"])
    print(format_table(["test noise level", "held-out WER"], rows))
    print("\nWER is best at the matched training noise (0.02) and degrades "
          "as the mismatch grows in EITHER direction — even perfectly "
          "clean audio is out-of-distribution, because the log-mel floor "
          "statistics shift when the noise floor disappears.  This is the "
          "classic train/test-mismatch shape the robustness literature "
          "(Section 2.1.3) targets with multi-condition training.")


if __name__ == "__main__":
    main()
