#!/usr/bin/env python
"""SEU fault-injection study: how fragile is the weight store?

    python examples/fault_injection.py

Flips single bits of HBM-resident fp32 weights and measures the logit
blast radius.  The asymmetry — mantissa-tail flips vanish, exponent
flips detonate — is the quantitative case for ECC/scrubbing on the
weight path, and an int8 deployment (examples/quantization_study.py)
shrinks the vulnerable exponent surface to zero.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.config import ModelConfig
from repro.hw.faults import FaultSpec, measure_impact, random_fault
from repro.model.params import init_transformer_params


def main() -> None:
    params = init_transformer_params(
        ModelConfig(num_encoders=2, num_decoders=1), seed=4
    )
    print("single-bit flips in enc0.ffn.w1, element 1000:")
    rows = []
    for bit in (0, 5, 10, 15, 20, 23, 26, 28, 30, 31):
        impact = measure_impact(params, [FaultSpec("enc0.ffn.w1", 1000, bit)])
        field = "mantissa" if bit < 23 else ("exponent" if bit < 31 else "sign")
        rows.append([
            bit,
            field,
            "non-finite" if impact.produced_nonfinite
            else f"{impact.max_abs_logit_delta:.2e}",
            impact.top1_flips,
        ])
    print(format_table(
        ["bit", "field", "max |d logit|", "top-1 flips"], rows
    ))

    print("\nMonte-Carlo: 40 random single-bit weight faults:")
    rng = np.random.default_rng(7)
    benign = severe = broken = 0
    for _ in range(40):
        impact = measure_impact(params, [random_fault(params, rng)])
        if impact.produced_nonfinite:
            broken += 1
        elif impact.top1_flips > 0 or impact.max_abs_logit_delta > 0.5:
            severe += 1
        else:
            benign += 1
    print(f"  benign: {benign}/40   severe: {severe}/40   "
          f"non-finite: {broken}/40")
    print("\nFinding: the Transformer is remarkably fault-tolerant — the "
          "Add-Norm layers renormalize away almost every single-bit "
          "upset, and only the *top* exponent bit (which turns a weight "
          "into ~1e38) moves a decision.  A scrubbing/ECC scheme "
          "therefore only needs to protect one or two bits per word — "
          "or deploy int8, which has no exponent field at all.")


if __name__ == "__main__":
    main()
