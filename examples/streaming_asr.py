#!/usr/bin/env python
"""Streaming transcription of a long utterance (real-time claim).

    python examples/streaming_asr.py

LibriSpeech utterances run up to 15 s but the hardware handles ~1.4 s
of audio per pass (s = 32).  This example chunks a long synthetic
utterance, runs every chunk through the simulated accelerator, and
shows the real-time factor staying well below 1 — the abstract's
"suitable for real-time applications" claim — plus the back-to-back
throughput with the next sequence's weights prefetched ("LW+").
"""

from repro.analysis.report import format_table
from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline
from repro.asr.streaming import StreamingTranscriber
from repro.model.params import init_transformer_params


def main() -> None:
    params = init_transformer_params(seed=3)
    pipeline = AsrPipeline(params, hw_seq_len=32, architecture="A3")
    transcriber = StreamingTranscriber(pipeline)

    utterance = LibriSpeechLikeDataset(seed=8).generate(
        1, min_words=14, max_words=14
    )[0]
    print(f"utterance: {utterance.duration_s:.1f} s of audio "
          f"({utterance.transcript!r})")
    print(f"chunk size: {transcriber.chunk_samples / 16000:.2f} s "
          f"(fills the s = {pipeline.accelerator.hw_seq_len} hardware)")

    result = transcriber.transcribe(utterance.waveform)
    rows = [
        [i, r.sequence_length, r.modeled_host_ms, r.accelerator_ms, r.e2e_ms]
        for i, r in enumerate(result.chunk_results)
    ]
    print(format_table(
        ["chunk", "s", "host ms", "accel ms", "e2e ms"], rows
    ))
    print(f"\ntotal processing: {result.total_e2e_ms:.1f} ms for "
          f"{result.audio_seconds:.1f} s of audio")
    print(f"real-time factor: {result.real_time_factor:.3f} "
          f"(< 1 means the system keeps up with live speech)")

    lm = pipeline.accelerator.latency_model
    single = 1e3 / lm.latency_ms(32, "A3")
    pipelined = lm.steady_state_throughput(32, "A3")
    print(f"\nback-to-back chunks with 'LW+' prefetch: "
          f"{pipelined:.2f} seq/s steady-state vs {single:.2f} seq/s "
          f"single-shot (paper: 11.88 seq/s)")


if __name__ == "__main__":
    main()
