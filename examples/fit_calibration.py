#!/usr/bin/env python
"""Re-fit the cycle-model calibration constants against Table 5.1.

    python examples/fit_calibration.py        (~1-2 minutes)

Minimizes squared log-latency error over the twelve Table 5.1 cells,
with soft constraints pinning the Fig 5.2 crossover near s = 18 and the
Section 5.1.4 FFN/MHA ~ 2x latency ratio.  The resulting constants are
the ones checked into :class:`repro.config.CalibrationConfig`; every
other experiment is then a *prediction* of the same model (DESIGN.md
section 5).
"""

import numpy as np
from scipy.optimize import minimize

from repro.config import CalibrationConfig, HardwareConfig
from repro.hw.blocks import ffn_cycles, mha_cycles
from repro.hw.controller import LatencyModel

PAPER = {
    4: {"A1": 65.87, "A2": 53.45, "A3": 33.92},
    8: {"A1": 75.57, "A2": 54.5, "A3": 39.9},
    16: {"A1": 98.14, "A2": 56.27, "A3": 52.59},
    32: {"A1": 122.8, "A2": 84.15, "A3": 84.15},
}


def build(x: np.ndarray) -> LatencyModel:
    calibration = CalibrationConfig(
        attention_ii=float(x[0]),
        ffn_ii=float(x[1]),
        invocation_overhead_cycles=int(round(x[2])),
        block_overhead_cycles=int(round(x[3])),
    )
    hardware = HardwareConfig(hbm_channel_gbps=float(x[4]))
    return LatencyModel(hardware=hardware, calibration=calibration)


def loss(x: np.ndarray) -> float:
    if min(x[0], x[1]) < 1.0 or x[2] < 0 or x[3] < 0 or x[4] <= 0.1:
        return 1e9
    lm = build(x)
    err = 0.0
    for s, row in PAPER.items():
        for arch, paper_ms in row.items():
            err += (np.log(lm.latency_ms(s, arch)) - np.log(paper_ms)) ** 2
    try:
        crossover = lm.crossover_sequence_length()
    except ValueError:
        return 1e9
    err += 0.02 * (crossover - 18.5) ** 2
    ratio = ffn_cycles(lm.fabric, 32, 512, 2048) / mha_cycles(
        lm.fabric, 32, 32, 8, 512
    )
    err += 0.5 * (np.log(ratio) - np.log(2.0)) ** 2
    return err


def main() -> None:
    starts = (
        [5.7, 10.0, 2000, 9600, 2.82],
        [3.3, 12.3, 2020, 12500, 2.81],
        [4.0, 6.0, 1000, 30000, 3.0],
    )
    best = None
    for x0 in starts:
        result = minimize(
            loss,
            np.asarray(x0, dtype=float),
            method="Nelder-Mead",
            options={"maxiter": 4000, "xatol": 1e-3, "fatol": 1e-8},
        )
        if best is None or result.fun < best.fun:
            best = result
    x = best.x
    print(f"fitted constants (loss {best.fun:.4f}):")
    print(f"  attention_ii               = {x[0]:.4f}")
    print(f"  ffn_ii                     = {x[1]:.4f}")
    print(f"  invocation_overhead_cycles = {int(round(x[2]))}")
    print(f"  block_overhead_cycles      = {int(round(x[3]))}")
    print(f"  hbm_channel_gbps           = {x[4]:.4f}")

    lm = build(x)
    print("\nTable 5.1 under the fit:")
    for s, row in PAPER.items():
        for arch, paper_ms in row.items():
            ours = lm.latency_ms(s, arch)
            print(f"  s={s:2d} {arch}: paper {paper_ms:7.2f}  "
                  f"model {ours:7.2f}  ({100 * (ours / paper_ms - 1):+5.1f}%)")
    print(f"crossover: s = {lm.crossover_sequence_length()} (target ~19)")
    ratio = ffn_cycles(lm.fabric, 32, 512, 2048) / mha_cycles(
        lm.fabric, 32, 32, 8, 512
    )
    print(f"FFN/MHA ratio @ s=32: {ratio:.2f} (target ~2)")


if __name__ == "__main__":
    main()
