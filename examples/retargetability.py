#!/usr/bin/env python
"""Retargetability study — the Section 1.1 flexibility claim.

    python examples/retargetability.py

The same fabric (eight 2x64 PSAs, two SLRs) hosts different transformer
configurations purely by changing the host-side schedule: the paper's
ESPnet model, the pruned NLP model of Qi et al. [29], the Vaswani
base/big machine-translation stacks and an encoder-only BERT-like
model.  No "re-synthesis" is required — only the controller's block
plan changes.
"""

from repro.analysis.report import format_table
from repro.analysis.retarget import retarget_study


def main() -> None:
    points = retarget_study(s=32)
    rows = [
        [
            p.name,
            f"{p.config.num_encoders}+{p.config.num_decoders}",
            f"{p.config.d_model}/{p.config.d_ff}/{p.config.num_heads}",
            p.weight_mb,
            p.gflops,
            p.latency_ms,
            p.gflops_per_second,
            p.crossover_s if p.crossover_s is not None else "-",
        ]
        for p in points
    ]
    print(format_table(
        ["configuration", "enc+dec", "d/ff/h", "weights MB", "GFLOP",
         "latency ms", "GFLOPs/s", "crossover"],
        rows,
    ))
    base = points[0]
    rates = [p.gflops_per_second for p in points]
    print(f"\nThe fabric sustains {min(rates):.0f}-{max(rates):.0f} GFLOPs/s "
          f"across all targets (paper design point: "
          f"{base.gflops_per_second:.1f}); model size moves latency and "
          f"the load/compute crossover, not the achievable rate — the "
          f"flexibility the paper claims in Section 1.1.")


if __name__ == "__main__":
    main()
