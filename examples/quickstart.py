#!/usr/bin/env python
"""Quickstart: transcribe one synthetic utterance on the simulated
FPGA accelerator — the Fig 5.1 flow end to end.

    python examples/quickstart.py

Stages: data preparation (PCM) -> 80-dim log-mel feature generation ->
conv subsampling -> Transformer decoding offloaded to the accelerator
simulator (architecture A3) -> recognized text.  The model weights are
random (no trained LibriSpeech model can exist offline), so the text is
noise — the point of this example is the *system*: every stage runs and
every stage is timed.  See examples/train_toy_asr.py for a trained
(scaled-down) model producing real transcriptions.
"""

from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline
from repro.model.params import init_transformer_params


def main() -> None:
    print("loading model weights (random init, paper dimensions)...")
    params = init_transformer_params(seed=2023)
    pipeline = AsrPipeline(params, hw_seq_len=32, architecture="A3")

    # Four words ~= 1.2 s of audio ~= a sequence length near the s = 32
    # the hardware was synthesized for.
    utterance = LibriSpeechLikeDataset(seed=42).generate(
        1, min_words=4, max_words=4
    )[0]
    print(f"stage 0: Data preparation     {utterance.utterance_id}.wav "
          f"({utterance.duration_s:.2f} s @ 16 kHz)")
    print(f"         reference transcript: {utterance.transcript!r}")

    result = pipeline.transcribe(utterance.waveform)
    print(f"stage 1: Feature Generation   80-dim fbank -> conv subsample "
          f"-> sequence length s = {result.sequence_length}")
    print(f"stage 3: Decoding             Transformer on the accelerator "
          f"({result.accelerator_report.architecture.value})")
    print(f"Recognized text: _{result.espnet_text}")
    print("Finished")
    print()
    print("latency account (s = 32 hardware):")
    print(f"  host preprocessing (modeled):   {result.modeled_host_ms:7.2f} ms"
          f"   (paper: 36.3 ms)")
    print(f"  host preprocessing (this box):  {result.measured_host_ms:7.2f} ms")
    print(f"  accelerator:                    {result.accelerator_ms:7.2f} ms"
          f"   (paper: 84.15 ms)")
    print(f"  end-to-end (modeled):           {result.e2e_ms:7.2f} ms"
          f"   (paper: 120.45 ms)")
    print(f"  throughput:                     {result.throughput_seq_per_s:7.2f} seq/s"
          f"  (paper: 11.88 seq/s)")


if __name__ == "__main__":
    main()
