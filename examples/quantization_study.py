#!/usr/bin/env python
"""Fixed-precision study — the paper's Section 6.2 future work,
realized: quantify how fp16/int8 weights relieve the LUT bottleneck,
move the load/compute crossover, and unlock lower-latency designs,
and what the quantization costs in logit accuracy.

    python examples/quantization_study.py
"""

from repro.analysis.report import format_table
from repro.quant.analysis import accuracy_study, precision_sweep
from repro.quant.schemes import FP16, INT8, INT16


def main() -> None:
    print("precision design-space sweep (A3, s = 32):")
    points = precision_sweep()
    rows = [
        [
            p.precision.name,
            p.encoder_load_ms,
            p.crossover_s,
            f"{p.lut_utilization_base:.0%}",
            p.latency_ms_base,
            p.best_psa_rows,
            p.latency_ms_best,
        ]
        for p in points
    ]
    print(format_table(
        ["precision", "enc load ms", "crossover", "LUT util",
         "latency @2-row", "widest rows", "latency @widest"],
        rows,
    ))
    fp32 = points[0]
    int8 = points[-1]
    print(f"\nheadline: int8 frees the LUT budget "
          f"({fp32.lut_utilization_base:.0%} -> {int8.lut_utilization_base:.0%}), "
          f"allows {int8.best_psa_rows}-row PSAs, and cuts A3 latency "
          f"{fp32.latency_ms_best:.1f} -> {int8.latency_ms_best:.1f} ms "
          f"({fp32.latency_ms_best / int8.latency_ms_best:.1f}x) — the paper's "
          f"future-work prediction, quantified.")

    print("\naccuracy cost (fake-quantized vs fp32, 2-enc/1-dec model):")
    rows = []
    for precision in (FP16, INT16, INT8):
        r = accuracy_study(precision)
        rows.append([
            precision.name,
            f"{r.max_abs_logit_error:.4f}",
            f"{r.mean_abs_logit_error:.5f}",
            f"{r.top1_agreement:.0%}",
            f"{r.weight_bytes_ratio:.2f}",
        ])
    print(format_table(
        ["precision", "max |d logit|", "mean |d logit|", "top-1 agree", "bytes ratio"],
        rows,
    ))


if __name__ == "__main__":
    main()
