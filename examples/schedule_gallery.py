#!/usr/bin/env python
"""Schedule gallery: ASCII renderings of the paper's schedule figures.

    python examples/schedule_gallery.py

Figs 4.8-4.10 (encoder stack under A1/A2/A3), Fig 4.11 (A3 decoder with
the m/f split loads) and the per-block cycle budget behind Fig 4.13.
"""

from repro.analysis.report import format_table
from repro.config import ModelConfig
from repro.hw.blocks import (
    add_norm_cycles,
    attention_head_cycles,
    ffn_cycles,
    mha_cycles,
)
from repro.hw.controller import LatencyModel
from repro.hw.kernels import (
    mm1_cycles,
    mm2_cycles,
    mm3_cycles,
    mm4_cycles,
    mm5_cycles,
    mm6_cycles,
)
from repro.hw.scheduler import schedule
from repro.hw.visualize import render_gantt


def main() -> None:
    lm = LatencyModel()
    s = 8  # load-bound regime where the three architectures differ most

    print(f"Figs 4.8-4.10 — encoder-stack schedules at s = {s} "
          "('=' load, '#' compute)\n")
    enc_only = LatencyModel(model=ModelConfig(num_decoders=0))
    for arch in ("A1", "A2", "A3"):
        blocks = enc_only.build_blocks(s, arch)
        result = schedule(arch, blocks, enc_only.calibration.block_overhead_cycles)
        print(f"--- {arch} ({result.total_cycles / 300e3:.2f} ms) ---")
        print(render_gantt(result.timeline, width=100))
        print()

    print(f"Fig 4.11 — A3 decoder stack (m = MHA-part load on hbm0, "
          f"f = FFN-part load on hbm1) at s = {s}\n")
    dec_only = LatencyModel(model=ModelConfig(num_encoders=0))
    blocks = dec_only.build_blocks(s, "A3")
    result = schedule("A3", blocks, dec_only.calibration.block_overhead_cycles)
    print(render_gantt(result.timeline, width=100))

    print("\nFig 4.13 — per-operation cycle budget inside one encoder "
          "(s = 32):")
    fab = lm.fabric
    rows = [
        ["MM1 (one of 3 per head)", mm1_cycles(fab, 32, 512, 64)],
        ["MM2 (QK^T, padded)", mm2_cycles(fab, 32, 32, 64)],
        ["MM3 (SmV, padded)", mm3_cycles(fab, 32, 32, 64)],
        ["attention head total", attention_head_cycles(fab, 32, 32, 512, 64)],
        ["MM4 (8 PSAs)", mm4_cycles(fab, 32, 8, 64, 512)],
        ["MHA block", mha_cycles(fab, 32, 32, 8, 512)],
        ["MM5 (8 PSAs)", mm5_cycles(fab, 32, 512, 2048)],
        ["MM6 (8 PSAs)", mm6_cycles(fab, 32, 2048, 512)],
        ["FFN block", ffn_cycles(fab, 32, 512, 2048)],
        ["Add-Norm", add_norm_cycles(fab, 32, 512)],
    ]
    print(format_table(["operation", "cycles @300 MHz"], rows))
    mha = mha_cycles(fab, 32, 32, 8, 512)
    ffn = ffn_cycles(fab, 32, 512, 2048)
    print(f"FFN / MHA latency ratio: {ffn / mha:.2f} "
          "(paper: FFN ~ 2x the MHA block)")

    print("\nFig 4.13 — per-engine trace of one encoder (s = 32, "
          "8 parallel heads):")
    from repro.hw.block_trace import trace_encoder_block

    print(render_gantt(trace_encoder_block(fab, 32), width=110))


if __name__ == "__main__":
    main()
