#!/usr/bin/env python
"""Batch transcription: throughput, speedups and energy (§5.1.5/5.1.6).

    python examples/batch_transcription.py

Transcribes a small batch of synthetic utterances on the simulated
accelerator and reports the accelerator throughput, the CPU/GPU speedup
columns of Tables 5.4/5.5 and the energy-efficiency comparison.
"""

from repro.analysis.report import format_table
from repro.asr.dataset import LibriSpeechLikeDataset
from repro.asr.pipeline import AsrPipeline
from repro.baselines.cpu import CPU_ANCHORS, CpuLatencyModel
from repro.baselines.energy import fpga_energy_model, gpu_energy_model
from repro.baselines.gpu import GPU_ANCHORS, GpuLatencyModel
from repro.model.params import init_transformer_params


def main() -> None:
    params = init_transformer_params(seed=7)
    pipeline = AsrPipeline(params, hw_seq_len=32, architecture="A3")
    batch = LibriSpeechLikeDataset(seed=11).generate(4, min_words=2, max_words=2)

    print("batch transcription on the simulated accelerator:")
    rows = []
    for utt in batch:
        result = pipeline.transcribe(utt.waveform)
        rows.append([
            utt.utterance_id,
            f"{utt.duration_s:.2f}s",
            result.sequence_length,
            result.accelerator_ms,
            result.e2e_ms,
        ])
    print(format_table(
        ["utterance", "audio", "s", "accel ms", "e2e ms"], rows
    ))

    accel_s = pipeline.accelerator.latency_report().latency_ms / 1e3
    print(f"\naccelerator throughput: {1 / accel_s:.2f} seq/s "
          f"(paper: 11.88 seq/s)")

    cpu, gpu = CpuLatencyModel(), GpuLatencyModel()
    print("\nTables 5.4 / 5.5 — speedup over CPU and GPU "
          "(fixed s=32 hardware, inputs padded):")
    rows = [
        [s, CPU_ANCHORS[s], cpu.speedup_over(s, accel_s),
         GPU_ANCHORS[s], gpu.speedup_over(s, accel_s)]
        for s in sorted(CPU_ANCHORS)
    ]
    print(format_table(
        ["s", "CPU s", "CPU speedup", "GPU s", "GPU speedup"], rows
    ))
    cpu_avg = sum(cpu.speedup_over(s, accel_s) for s in CPU_ANCHORS) / 6
    gpu_avg = sum(gpu.speedup_over(s, accel_s) for s in GPU_ANCHORS) / 6
    print(f"averages: CPU {cpu_avg:.1f}x (paper 32x), "
          f"GPU {gpu_avg:.1f}x (paper 8.8x)")

    fpga_e = fpga_energy_model()
    gpu_e = gpu_energy_model()
    print(f"\nenergy efficiency at s=32: "
          f"FPGA {fpga_e.gflops_per_joule(32, accel_s):.2f} GFLOPs/J "
          f"(paper 1.38) vs GPU "
          f"{gpu_e.gflops_per_joule(32, GPU_ANCHORS[32]):.3f} GFLOPs/J "
          f"(paper ~0.055)")


if __name__ == "__main__":
    main()
