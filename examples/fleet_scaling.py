#!/usr/bin/env python
"""Fleet scaling: data-parallel transcription over many U50 cards.

    python examples/fleet_scaling.py

Sequences are independent, so a transcription service scales by
round-robining utterances over cards.  The model predicts aggregate
throughput, and where the shared host PCIe link finally binds.
"""

from repro.analysis.report import format_table
from repro.hw.controller import LatencyModel
from repro.hw.multicard import saturation_point, scaling_sweep


def main() -> None:
    lm = LatencyModel()
    print("data-parallel scaling at s = 32, architecture A3:")
    sweep = scaling_sweep(card_counts=(1, 2, 4, 8, 16, 32, 64), latency_model=lm)
    rows = [
        [
            p.num_cards,
            p.throughput_seq_per_s,
            f"{p.scaling_efficiency:.0%}",
            "host PCIe" if p.pcie_bound else "cards",
        ]
        for p in sweep
    ]
    print(format_table(
        ["cards", "seq/s", "scaling eff.", "bound by"], rows
    ))
    knee = saturation_point(lm, max_cards=10_000)
    per_card = sweep[0].throughput_seq_per_s
    print(f"\nEach card sustains {per_card:.2f} seq/s (paper: 11.88). "
          f"With 12 GB/s of host DMA and 128 KB of activations per "
          f"sequence, the host link only binds at ~{knee} cards — any "
          f"realistic fleet scales linearly, because the design keeps "
          f"the 252 MB weight stream *on the card* (HBM) and ships only "
          f"activations over PCIe.")


if __name__ == "__main__":
    main()
